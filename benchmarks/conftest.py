"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints it.  The corpora, indexes, and expensive multi-run experiments
are computed once per session and shared.

Scale: benchmarks honour ``REPRO_SCALE`` (default 1.0 — the profile
sizes of DESIGN.md).  Set e.g. ``REPRO_SCALE=0.1`` for a fast smoke
pass; the shapes survive scaling, only absolute document counts move.

Seeds: runs average over ``SEEDS`` (3 seeds) as a light version of the
paper's repeated trials.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass, field

import pytest

from repro.experiments.figures import figure1_and_2_curves, figure3_strategy_curves
from repro.experiments.testbed import Testbed

#: Seeds averaged by the multi-run experiments.
SEEDS = (0, 1, 2)

#: Where the performance baseline lands (override: BENCH_PERF_PATH).
BENCH_PERF_PATH = os.environ.get(
    "BENCH_PERF_PATH", os.path.join(os.path.dirname(__file__), "..", "BENCH_perf.json")
)


@pytest.fixture(scope="session")
def testbed() -> Testbed:
    return Testbed(seed=0)


@pytest.fixture(scope="session")
def fig12_curves(testbed):
    """Baseline curves shared by Figure 1a, 1b, and 2."""
    return figure1_and_2_curves(testbed, seeds=SEEDS)


@pytest.fixture(scope="session")
def fig3_results(testbed):
    """Strategy curves shared by Figure 3a, 3b, and Table 3."""
    return figure3_strategy_curves(testbed, seeds=SEEDS)


def shape_checks(testbed: Testbed) -> bool:
    """Whether paper-shape assertions apply.

    The expected orderings and crossovers are calibrated for scale ≥
    0.5; below that, corpora are so small that sampling covers large
    fractions of each database and the paper's regimes blur.  Benches
    still *print* everything at any scale.
    """
    return testbed.scale >= 0.5


def emit(text: str) -> None:
    """Print a regenerated table/figure, framed for easy grepping."""
    print()
    print(text)
    print()


@dataclass
class PerfRecorder:
    """Collects hot-path timings and writes ``BENCH_perf.json``.

    The JSON is the machine-readable perf-regression baseline: one
    entry per hot path with seconds/op and ops/sec, plus derived
    before/after speedups (e.g. incremental curve measurement vs. the
    frozen pre-optimization path in :mod:`benchmarks.baselines`).
    Format::

        {
          "schema": "repro-bench-perf/1",
          "environment": {"python": "...", "machine": "...", "scale": 0.05},
          "hot_paths": {"<name>": {"seconds_per_op": s, "ops_per_sec": 1/s}},
          "speedups": {"<after>_vs_<before>": x}
        }
    """

    path: str
    #: Corpus scale the perf corpus was built at (set by the perf module).
    scale: float | None = None
    hot_paths: dict[str, dict[str, float]] = field(default_factory=dict)
    speedups: dict[str, float] = field(default_factory=dict)

    def record(self, name: str, seconds_per_op: float) -> None:
        """Register one hot path's per-operation wall time."""
        self.hot_paths[name] = {
            "seconds_per_op": seconds_per_op,
            "ops_per_sec": (1.0 / seconds_per_op) if seconds_per_op > 0 else 0.0,
        }

    def record_benchmark(self, name: str, benchmark) -> None:
        """Register a pytest-benchmark fixture's best observed time.

        The minimum — not the mean — is the regression statistic:
        it is the least noise-contaminated estimate of the code's
        cost, so baselines stay comparable across differently loaded
        machines.
        """
        stats = benchmark.stats
        # pytest-benchmark wraps Stats in Metadata; tolerate both.
        inner = getattr(stats, "stats", stats)
        self.record(name, float(inner.min))

    def speedup(self, label: str, before: str, after: str) -> float:
        """Derive and register ``before``/``after`` as a speedup."""
        ratio = (
            self.hot_paths[before]["seconds_per_op"]
            / self.hot_paths[after]["seconds_per_op"]
        )
        self.speedups[label] = ratio
        return ratio

    def write(self) -> None:
        if not self.hot_paths:
            return
        payload = {
            "schema": "repro-bench-perf/1",
            "environment": {
                "python": platform.python_version(),
                "machine": platform.machine(),
                "scale": self.scale,
            },
            "hot_paths": {
                name: {k: round(v, 9) for k, v in entry.items()}
                for name, entry in sorted(self.hot_paths.items())
            },
            "speedups": {
                label: round(value, 3) for label, value in sorted(self.speedups.items())
            },
        }
        with open(self.path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")


@pytest.fixture(scope="session")
def perf_recorder():
    """Session-wide sink for performance results; writes on teardown."""
    recorder = PerfRecorder(path=BENCH_PERF_PATH)
    yield recorder
    recorder.write()
