"""Extension Ext-2: query expansion from the union of samples (§8).

Co-occurrence-based query expansion needs a representative document
collection to mine expansion terms from.  For *database selection*
queries, expanding from any single database biases selection toward
that database; the paper's insight is that the union of the sampling
service's document samples s₁ ∪ s₂ ∪ … ∪ sₙ "favors no specific
database, but reflects patterns that are common to them all" — it is
the right expansion collection.

This bench quantifies the claim on a topically skewed federation:
expansions mined from a single database's sample skew toward that
database's vocabulary; expansions mined from the union spread across
databases more evenly (smaller max-min bias spread).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.expansion import QueryExpander, SampleCollection, expansion_bias
from repro.experiments.reporting import format_table
from repro.federation import build_skewed_partition
from repro.index import DatabaseServer
from repro.sampling import MaxDocuments, QueryBasedSampler, RandomFromOther
from repro.text.stopwords import INQUERY_STOPWORDS

NUM_DATABASES = 3
SAMPLE_BUDGET = 150


def _experiment(testbed):
    corpus = testbed.server("wsj88").index.corpus
    parts = build_skewed_partition(corpus, num_databases=NUM_DATABASES, seed=29)
    servers = {part.name: DatabaseServer(part) for part in parts}
    runs = {}
    for name, server in servers.items():
        sampler = QueryBasedSampler(
            server,
            bootstrap=RandomFromOther(testbed.actual_model("trec123")),
            stopping=MaxDocuments(min(SAMPLE_BUDGET, server.num_documents // 3)),
            seed=31,
            name=name,
        )
        runs[name] = sampler.run()

    learned_models = {name: run.model for name, run in runs.items()}
    union = SampleCollection()
    singles = {}
    for name, run in runs.items():
        single = SampleCollection()
        single.add_sample(run.documents, source=name)
        singles[name] = single
        union.add_sample(run.documents, source=name)

    # Query terms: topically *neutral* content terms (ctf spread evenly
    # across the databases).  For such a query no database "deserves"
    # the expansion vocabulary, so any skew in the expansion is pure
    # mining bias — exactly what Section 8 warns about.
    rows = []
    spreads = {"single": [], "union": []}
    num_models = len(learned_models)
    for name, run in runs.items():
        def _imbalance(term: str) -> float:
            total = sum(m.ctf(term) for m in learned_models.values())
            if total == 0:
                return float("inf")
            shares = [m.ctf(term) / total for m in learned_models.values()]
            return max(abs(share - 1.0 / num_models) for share in shares)

        candidates = [
            stats.term
            for stats in run.model.top_terms(400, key="ctf")
            if len(stats.term) >= 4
            and not stats.term.isdigit()
            and stats.term not in INQUERY_STOPWORDS
            and all(stats.term in other for other in learned_models.values())
        ]
        term = min(candidates, key=_imbalance)
        for label, collection in (("single", singles[name]), ("union", union)):
            expanded = QueryExpander(collection, min_df=2).expand(term, k=8)
            bias = expansion_bias(expanded, learned_models)
            values = np.array([bias[db] for db in sorted(learned_models)])
            spread = float(values.max() - values.min()) if len(values) else 0.0
            spreads[label].append(spread)
            rows.append(
                {
                    "query_term": term,
                    "mined_from": f"{label}:{name}" if label == "single" else "union",
                    "expansions": len(expanded.expansions),
                    **{f"bias_{db}": round(bias[db], 3) for db in sorted(bias)},
                    "spread": round(spread, 3),
                }
            )
    return rows, spreads


def test_bench_ext_expansion(benchmark, testbed):
    rows, spreads = benchmark.pedantic(lambda: _experiment(testbed), rounds=1, iterations=1)
    emit(format_table(rows, title="Ext-2: expansion-vocabulary bias, single sample vs union"))

    mean_single = float(np.mean(spreads["single"]))
    mean_union = float(np.mean(spreads["union"]))
    emit(f"Mean bias spread: single-database {mean_single:.3f}, union {mean_union:.3f}")
    # The comparison must be non-trivial: expansions were actually found.
    assert any(row["expansions"] > 0 for row in rows), rows
    # The union's expansions spread across databases more evenly.
    assert mean_union <= mean_single + 1e-9, (mean_single, mean_union)
    # The core of Section 8's warning: an expansion mined from one
    # database's sample favours *that* database — its own bias column is
    # the largest in a majority of rows.
    single_rows = [row for row in rows if row["mined_from"].startswith("single:")]
    self_favoring = 0
    for row in single_rows:
        miner = row["mined_from"].split(":", 1)[1]
        own = row[f"bias_{miner}"]
        others = [
            value
            for key, value in row.items()
            if key.startswith("bias_") and key != f"bias_{miner}"
        ]
        if own >= max(others):
            self_favoring += 1
    assert self_favoring >= (len(single_rows) + 1) // 2, rows
