"""Figure 2: term-ranking agreement vs. documents examined.

Paper reference: the Spearman rank correlation between learned and
actual df-rankings rises quickly then levels, and — unlike ctf ratio —
*is* influenced by database size: CACM converges fastest/highest, WSJ88
intermediate, TREC-123 slowest/lowest (0.9 / 0.76 / 0.4 in the paper).

Reproduction note (EXPERIMENTS.md): our absolute coefficients are
compressed toward the middle (≈0.70 / 0.65 / 0.61 at scale 1.0) because
the synthetic corpora have a flatter mid-frequency tie structure than
real text and the TREC analogue is 48K docs rather than 1.08M; the
size-dependent *ordering* and the rising-then-leveling shape are the
reproduced claims.
"""

from __future__ import annotations

from benchmarks.conftest import emit, shape_checks
from repro.experiments.ascii_plot import plot_series
from repro.experiments.reporting import curve_series, format_series


def test_bench_figure2_spearman(benchmark, fig12_curves, testbed):
    series = benchmark.pedantic(
        lambda: curve_series(fig12_curves, "spearman"), rounds=1, iterations=1
    )
    emit(
        format_series(
            series,
            title="Figure 2: Spearman correlation of learned vs actual df rankings",
        )
    )
    emit(plot_series(series, title="Figure 2 (plot)"))
    final = {name: points[-1][1] for name, points in series.items()}
    if shape_checks(testbed):
        # Size-dependence: smaller/more homogeneous converges higher.
        assert final["cacm"] > final["wsj88"] > final["trec123"], final
    # All runs end positively correlated and improved over their start.
    for name, points in series.items():
        values = [v for _, v in points]
        assert values[-1] > 0.3, (name, values)
        assert values[-1] > values[0], (name, values)
