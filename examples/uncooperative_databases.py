#!/usr/bin/env python3
"""Why cooperation isn't enough: STARTS vs query-based sampling.

Stages the paper's Section 2.2 argument with four databases that all
search honestly but behave differently toward the STARTS export
protocol: one cooperates, one is a legacy system, one refuses, and one
*lies* — exporting a forged language model ten times its real size with
spam vocabulary injected to attract selection traffic.

A selection service that trusts exports acquires a poisoned model from
the liar and nothing at all from the other two; the sampling service
acquires a faithful model from all four, because "language models are
learned as a consequence of normal database behavior" (Section 3).

Run:  python examples/uncooperative_databases.py
"""

from __future__ import annotations

from repro.index import DatabaseServer
from repro.lm import spearman_rank_correlation
from repro.sampling import ListBootstrap, MaxDocuments, SamplerConfig
from repro.starts import (
    CooperativeSource,
    HonestServer,
    LegacyServer,
    MisrepresentingServer,
    SamplingSource,
    UncooperativeServer,
    acquire_language_model,
)
from repro.synth import wsj88_like

SPAM = ("jackpot", "lottery", "miracle")


def main() -> None:
    print("Building one corpus behind four kinds of server ...")
    inner = DatabaseServer(wsj88_like().build(seed=77, scale=0.1))
    truth = inner.actual_language_model()
    servers = {
        "honest": HonestServer(inner),
        "legacy": LegacyServer(inner),
        "uncooperative": UncooperativeServer(inner),
        "misrepresenting": MisrepresentingServer(inner, inflation=10, injected_terms=SPAM),
    }

    seeds = [s.term for s in truth.top_terms(150, "ctf")]

    def sampling_source() -> SamplingSource:
        return SamplingSource(
            bootstrap=ListBootstrap(seeds),
            stopping=MaxDocuments(150),
            config=SamplerConfig(keep_documents=False),
            seed=9,
        )

    header = f"  {'server':<16} {'policy':<14} {'acquired via':<13} {'claimed docs':>12} {'spam df':>8} {'spearman':>9}"
    print("\nAcquiring a language model from each server, two policies:\n")
    print(header)
    for trust, policy in ((True, "trusting"), (False, "sampling-only")):
        for label, server in servers.items():
            result = acquire_language_model(
                server, sampling_source(), CooperativeSource(), trust_exports=trust
            )
            model = result.model
            if result.method == "sampling":
                model = model.project(inner.index.analyzer)
            spam_df = sum(model.df(term) for term in SPAM)
            spearman = spearman_rank_correlation(model, truth)
            print(
                f"  {label:<16} {policy:<14} {result.method:<13} "
                f"{model.documents_seen:>12,} {spam_df:>8} {spearman:>9.3f}"
            )
        print()

    print(
        "The trusting service imported a 10x-inflated forgery (note the\n"
        "spam df) and got nothing from the legacy/refusing servers.\n"
        "The sampling service got a consistent, spam-free model from\n"
        "every server — including the liar, whose *search results*\n"
        "cannot misrepresent what it actually contains."
    )


if __name__ == "__main__":
    main()
