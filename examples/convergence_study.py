#!/usr/bin/env python3
"""Convergence study: when can a sampler stop? (paper Section 6)

Runs query-based sampling on three databases of very different sizes
and prints, side by side:

* the rdiff between consecutive 50-document model snapshots — the
  *observable* signal a real client can compute; and
* the ctf ratio against ground truth — the *unobservable* quality a
  client would love to know.

The paper's claim: rdiff falls as the model converges, roughly
independently of database size, so "stop when rdiff stays below a
threshold" is a practical criterion.  The last section demonstrates the
:class:`RdiffConvergence` criterion ending runs on its own.

Run:  python examples/convergence_study.py
"""

from __future__ import annotations

from repro.experiments.runner import measure_run, rdiff_series, run_sampling
from repro.index import DatabaseServer
from repro.sampling import (
    AnyOf,
    ListBootstrap,
    MaxDocuments,
    QueryBasedSampler,
    RdiffConvergence,
)
from repro.synth import cacm_like, trec123_like, wsj88_like

PROFILES = {
    "cacm-like": (cacm_like(), 0.5),
    "wsj88-like": (wsj88_like(), 0.25),
    "trec123-like": (trec123_like(), 0.1),
}


def bootstrap_for(server: DatabaseServer) -> ListBootstrap:
    seeds = [s.term for s in server.actual_language_model().top_terms(150, "ctf")]
    return ListBootstrap(seeds)


def main() -> None:
    print("Observable convergence (rdiff) vs. hidden quality (ctf ratio)\n")
    for label, (profile, scale) in PROFILES.items():
        corpus = profile.build(seed=29, scale=scale)
        server = DatabaseServer(corpus)
        budget = min(300, server.num_documents // 3)
        run = run_sampling(
            server, bootstrap=bootstrap_for(server), max_documents=budget, seed=3
        )
        curve = measure_run(
            run,
            server.actual_language_model(),
            server.index.analyzer,
            label,
            "random_llm",
            4,
        )
        rdiffs = dict(rdiff_series(run))
        print(f"{label} ({server.num_documents:,} documents, budget {budget}):")
        print(f"  {'docs':>6} {'rdiff (observable)':>20} {'ctf ratio (hidden)':>20}")
        for point in curve.points:
            rdiff_cell = (
                f"{rdiffs[point.documents]:20.4f}" if point.documents in rdiffs else " " * 20
            )
            print(f"  {point.documents:>6} {rdiff_cell} {point.ctf_ratio:20.3f}")
        print()

    print("Letting the rdiff criterion stop the run by itself:")
    for label, (profile, scale) in PROFILES.items():
        corpus = profile.build(seed=31, scale=scale)
        server = DatabaseServer(corpus)
        sampler = QueryBasedSampler(
            server,
            bootstrap=bootstrap_for(server),
            stopping=AnyOf(
                [
                    RdiffConvergence(threshold=0.05, consecutive=2),
                    MaxDocuments(server.num_documents // 2),
                ]
            ),
            seed=3,
        )
        run = sampler.run()
        print(
            f"  {label:<14} stopped after {run.documents_examined:>4} documents "
            f"({run.queries_run} queries) — {run.stop_reason}"
        )


if __name__ == "__main__":
    main()
