#!/usr/bin/env python3
"""A peek inside an unknown database: summarization and query expansion.

Reproduces the paper's Sections 7 and 8 as a user-facing workflow.
You've discovered a searchable database and know nothing about it:

1. sample it through its query interface;
2. print a Table 4-style summary ("what is this database about?")
   under all three frequency rankings;
3. use the sample's co-occurrence structure to expand a query —
   without any cooperation from the database.

Run:  python examples/database_browser.py
"""

from __future__ import annotations

from repro.expansion import QueryExpander, SampleCollection
from repro.index import DatabaseServer
from repro.sampling import ListBootstrap, MaxDocuments, QueryBasedSampler, SamplerConfig
from repro.summarize import format_summary_grid, summarize
from repro.synth import mssupport_like


def main() -> None:
    print("Standing up the mystery database (tech-support corpus) ...")
    corpus = mssupport_like().build(seed=19, scale=0.5)
    server = DatabaseServer(corpus)

    # Sample it.  The paper's earliest experiment used 25 docs/query.
    seeds = [s.term for s in server.actual_language_model().top_terms(100, "ctf")]
    sampler = QueryBasedSampler(
        server,
        bootstrap=ListBootstrap(seeds),
        stopping=MaxDocuments(250),
        config=SamplerConfig(docs_per_query=25),
        seed=2,
    )
    run = sampler.run()
    print(
        f"Sampled {run.documents_examined} documents "
        f"with {run.queries_run} queries.\n"
    )

    # --- Section 7: what is this database about? -------------------------
    for rank_by in ("df", "ctf", "avg_tf"):
        summary = summarize(run.model, k=20, rank_by=rank_by)
        print(format_summary_grid(summary, columns=4))
        print()
    print(
        "Note how the avg-tf ranking surfaces topically concentrated\n"
        "product terms — the paper's Table 4 observation.\n"
    )

    # --- Section 8: co-occurrence query expansion ------------------------
    sample = SampleCollection()
    sample.add_sample(run.documents, source=server.name)
    expander = QueryExpander(sample, min_df=3)
    for query in ("printer", "mail", "database"):
        expanded = expander.expand(query, k=5)
        terms = ", ".join(f"{e.term} ({e.score:.1f})" for e in expanded.expansions)
        print(f"  expand({query!r}) -> {terms or '(no associations found)'}")
    print(
        "\nExpansion terms come from the sample alone — the database\n"
        "never exported an index, a vocabulary, or any statistics."
    )


if __name__ == "__main__":
    main()
