#!/usr/bin/env python3
"""Federated search: sample many databases, then route queries with CORI.

The paper's motivating scenario (Section 1): an organisation has many
text databases and a user who doesn't know where to look.  This example

1. builds a federation of topically skewed databases,
2. learns a language model for each *through its query interface only*
   (no cooperation, no index export — the paper's whole point),
3. ranks the databases per query with CORI, bGlOSS, and KL selectors,
4. reports how often each selector's top pick actually holds the most
   relevant documents.

Run:  python examples/federated_search.py
"""

from __future__ import annotations

from collections import Counter, defaultdict

import numpy as np

from repro.corpus import Corpus
from repro.dbselect import make_selector, recall_at_n
from repro.index import DatabaseServer
from repro.sampling import ListBootstrap, MaxDocuments, QueryBasedSampler
from repro.synth import wsj88_like
from repro.text import Analyzer

NUM_DATABASES = 6
SAMPLE_BUDGET = 120


def build_federation() -> list[Corpus]:
    """Split one corpus into topically skewed databases (70% home)."""
    corpus = wsj88_like().build(seed=11, scale=0.25)
    rng = np.random.default_rng(3)
    topics = sorted(corpus.topics())
    home = {topic: i % NUM_DATABASES for i, topic in enumerate(topics)}
    buckets: dict[int, list] = defaultdict(list)
    for document in corpus:
        bucket = (
            home[document.topic]
            if rng.random() >= 0.3
            else int(rng.integers(NUM_DATABASES))
        )
        buckets[bucket].append(document)
    return [Corpus(docs, name=f"db{i}") for i, docs in sorted(buckets.items())]


def topical_queries(corpus_parts: list[Corpus], k: int = 6) -> dict[str, str]:
    """Per-topic queries built from topic-distinctive index terms."""
    analyzer = Analyzer.inquery_style()
    global_counts: Counter = Counter()
    per_topic: dict[str, Counter] = defaultdict(Counter)
    for part in corpus_parts:
        for document in part:
            terms = analyzer.analyze(document.text)
            global_counts.update(terms)
            per_topic[document.topic].update(terms)
    queries = {}
    for topic in sorted(per_topic)[:k]:
        scored = sorted(
            (
                (count / global_counts[term], term)
                for term, count in per_topic[topic].items()
                if global_counts[term] >= 20 and len(term) >= 3
            ),
            reverse=True,
        )
        queries[topic] = " ".join(term for _, term in scored[:3])
    return queries


def main() -> None:
    print("Building a federation of topically skewed databases ...")
    parts = build_federation()
    servers = {part.name: DatabaseServer(part) for part in parts}
    for name, server in servers.items():
        print(f"  {name}: {server.num_documents:,} documents")

    print(f"\nLearning each database's language model ({SAMPLE_BUDGET} docs each) ...")
    learned = {}
    for name, server in servers.items():
        seeds = [s.term for s in server.actual_language_model().top_terms(100, "ctf")]
        run = QueryBasedSampler(
            server,
            bootstrap=ListBootstrap(seeds),
            stopping=MaxDocuments(SAMPLE_BUDGET),
            seed=5,
            name=name,
        ).run()
        learned[name] = run.model
        print(
            f"  {name}: {run.queries_run} queries → {len(run.model):,} terms learned"
        )

    queries = topical_queries(parts)
    selectors = {
        "CORI": make_selector("cori", analyzer=Analyzer.inquery_style()),
        "bGlOSS": make_selector("bgloss", analyzer=Analyzer.inquery_style()),
        "KL": make_selector("kl", analyzer=Analyzer.inquery_style()),
    }

    print("\nRouting topical queries (R@2 = recall of top-2 databases):")
    header = f"  {'topic':<10} {'query':<40}" + "".join(
        f"{label:>8}" for label in selectors
    )
    print(header)
    mean_recall = {label: [] for label in selectors}
    for topic, query in queries.items():
        relevant = {
            part.name: sum(1 for d in part if d.topic == topic) for part in parts
        }
        cells = []
        for label, selector in selectors.items():
            ranking = selector.rank(query, learned)
            recall = recall_at_n(ranking, relevant, 2)
            mean_recall[label].append(recall)
            cells.append(f"{recall:8.2f}")
        print(f"  {topic:<10} {query:<40}" + "".join(cells))

    print("\nMean R@2 with sampled (learned) language models:")
    for label, values in mean_recall.items():
        print(f"  {label:<8} {sum(values) / len(values):.3f}")


if __name__ == "__main__":
    main()
