#!/usr/bin/env python3
"""Quickstart: learn a database's language model by sampling it.

This is the paper's core loop in ~40 lines:

1. stand up a full-text database (here: a synthetic newspaper corpus
   behind our Inquery-style search engine — swap in any corpus you
   have, e.g. via ``repro.corpus.read_jsonl``);
2. point a :class:`QueryBasedSampler` at its *query interface only*;
3. compare the learned model against the database's actual index.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.index import DatabaseServer
from repro.lm import ctf_ratio, percentage_learned, spearman_rank_correlation
from repro.sampling import ListBootstrap, MaxDocuments, QueryBasedSampler
from repro.synth import wsj88_like


def main() -> None:
    # A 12,000-document newspaper-like database (scale it down for speed).
    print("Building the database (synthetic WSJ-like corpus) ...")
    corpus = wsj88_like().build(seed=42, scale=0.25)
    server = DatabaseServer(corpus)
    print(f"  {server.num_documents:,} documents indexed")

    # The sampler sees only server.run_query().  Bootstrap it with a few
    # candidate words; anything likely to occur in the database works.
    seed_words = [stats.term for stats in server.actual_language_model().top_terms(200, "ctf")]
    sampler = QueryBasedSampler(
        server,
        bootstrap=ListBootstrap(seed_words),
        stopping=MaxDocuments(300),
        seed=7,
    )

    print("Sampling with one-term queries (4 documents per query) ...")
    run = sampler.run()
    print(f"  queries run:        {run.queries_run}")
    print(f"  failed queries:     {run.failed_queries}")
    print(f"  documents examined: {run.documents_examined}")
    print(f"  learned vocabulary: {len(run.model):,} raw terms")

    # Evaluation (requires ground truth, so only possible on a corpus
    # you control): project the learned model through the database's
    # own pipeline, then compare.
    actual = server.actual_language_model()
    learned = run.model.project(server.index.analyzer)
    print("\nLearned vs. actual language model:")
    print(f"  vocabulary coverage (pct learned): {percentage_learned(learned, actual):6.1%}")
    print(f"  term-occurrence coverage (ctf):    {ctf_ratio(learned, actual):6.1%}")
    print(f"  rank agreement (Spearman):         {spearman_rank_correlation(learned, actual):6.3f}")

    print("\nTop 10 learned terms by collection frequency:")
    for stats in run.model.top_terms(10, key="ctf"):
        print(f"  {stats.term:<16} df={stats.df:<5} ctf={stats.ctf}")


if __name__ == "__main__":
    main()
