#!/usr/bin/env python3
"""Estimating database size from the search surface alone.

The paper calls database size "difficult to acquire by sampling"
(Section 3) — vocabulary growth never saturates, so the sample itself
can't reveal it.  This example demonstrates the two estimator families
follow-on work developed, on databases of three different sizes, and
then uses the estimate to *calibrate* a learned language model to
collection magnitudes (the scaling the paper suggests).

Run:  python examples/size_estimation.py
"""

from __future__ import annotations

from repro.index import DatabaseServer
from repro.lm import scale_to_collection
from repro.sampling import ListBootstrap, MaxDocuments, QueryBasedSampler, SamplerConfig
from repro.sizeest import capture_recapture_report, estimate_database_size
from repro.synth import cacm_like, mssupport_like, wsj88_like

PROFILES = {
    "small": (cacm_like(), 0.5),
    "medium": (mssupport_like(), 0.5),
    "large": (wsj88_like(), 0.5),
}


def bootstrap_for(server: DatabaseServer) -> ListBootstrap:
    seeds = [s.term for s in server.actual_language_model().top_terms(150, "ctf")]
    return ListBootstrap(seeds)


def main() -> None:
    print("Size estimation from ~100 sampled documents per database:\n")
    print(f"  {'database':<8} {'true size':>10} {'sample-resample':>16} {'schnabel':>10} {'schum-esch':>11}")
    last_server = None
    for label, (profile, scale) in PROFILES.items():
        server = DatabaseServer(profile.build(seed=63, scale=scale))
        last_server = server
        bootstrap = bootstrap_for(server)
        resample = estimate_database_size(
            server, bootstrap, method="sample_resample", sample_documents=100, seed=2
        )
        captures = capture_recapture_report(
            server, bootstrap, sample_documents=200, num_capture_samples=4, seed=2
        )
        print(
            f"  {label:<8} {server.num_documents:>10,} {resample:>16,.0f} "
            f"{captures['schnabel'].estimate:>10,.0f} "
            f"{captures['schumacher_eschmeyer'].estimate:>11,.0f}"
        )

    print(
        "\nSample-resample needs only the 'about N results' counter and is\n"
        "typically within tens of percent; capture-recapture inherits the\n"
        "sample's ranking bias and swings much wider.\n"
    )

    # Calibration: scale a learned model to collection magnitudes.
    assert last_server is not None
    sampler = QueryBasedSampler(
        last_server,
        bootstrap=bootstrap_for(last_server),
        stopping=MaxDocuments(100),
        config=SamplerConfig(keep_documents=False),
        seed=5,
    )
    run = sampler.run()
    estimate = estimate_database_size(
        last_server, bootstrap_for(last_server), sample_documents=100, seed=7
    )
    calibrated = scale_to_collection(run.model, estimate)
    analyzer = last_server.index.analyzer
    term = next(
        stats.term
        for stats in run.model.top_terms(50, key="ctf")
        if analyzer.project_term(stats.term) in last_server.index
    )
    true_df = last_server.index.df(analyzer.project_term(term))
    print("Calibrating the learned model with the size estimate:")
    print(f"  sample model:     {run.model.documents_seen:>7,} docs, df({term}) = {run.model.df(term)}")
    print(f"  calibrated model: {calibrated.documents_seen:>7,} docs, df({term}) = {calibrated.df(term)}")
    print(f"  true collection:  {last_server.num_documents:>7,} docs, df({term}) = {true_df}")


if __name__ == "__main__":
    main()
