"""Checkpoint/resume tests: killed runs resume bit-identically.

The acceptance bar for the persistence layer: interrupting a
checkpointed sampling run at an arbitrary query boundary and resuming
in a *fresh process* (modelled by a freshly constructed sampler/pool)
produces a language model bit-identical — same serialized bytes — to an
uninterrupted run.
"""

from __future__ import annotations

import json

import pytest

from repro.corpus import partition_round_robin
from repro.index import DatabaseServer
from repro.lm import dumps_language_model
from repro.sampling import (
    MaxDocuments,
    QueryBasedSampler,
    RandomFromOther,
    SamplerConfig,
    SamplingPool,
)
from repro.store import CheckpointMismatchError, PoolCheckpointer, SamplerCheckpointer
from repro.synth import cacm_like


class SimulatedCrash(RuntimeError):
    """Raised by the crashing checkpointers to model a killed process."""


class CrashingSamplerCheckpointer(SamplerCheckpointer):
    """Dies on the Nth save attempt — the last N-1 checkpoints are durable."""

    def __init__(self, directory, every_queries, crash_on_save):
        super().__init__(directory, every_queries=every_queries)
        self.crash_on_save = crash_on_save
        self.saves_attempted = 0

    def save(self, sampler):
        self.saves_attempted += 1
        if self.saves_attempted >= self.crash_on_save:
            raise SimulatedCrash(f"killed at save #{self.saves_attempted}")
        super().save(sampler)


class CrashingPoolCheckpointer(PoolCheckpointer):
    """Dies on the Nth save attempt — the last N-1 checkpoints are durable."""

    def __init__(self, directory, crash_on_save):
        super().__init__(directory)
        self.crash_on_save = crash_on_save
        self.saves_attempted = 0

    def save(self, pool, cursor):
        self.saves_attempted += 1
        if self.saves_attempted >= self.crash_on_save:
            raise SimulatedCrash(f"killed at save #{self.saves_attempted}")
        super().save(pool, cursor)


def make_sampler(server, seed: int = 7) -> QueryBasedSampler:
    return QueryBasedSampler(
        server,
        bootstrap=RandomFromOther(server.actual_language_model()),
        config=SamplerConfig(snapshot_interval=25),
        seed=seed,
    )


class TestSamplerCheckpointer:
    def test_fresh_directory_resumes_nothing(self, tmp_path, small_synthetic_server):
        checkpointer = SamplerCheckpointer(tmp_path / "ckpt")
        assert not checkpointer.has_checkpoint()
        assert checkpointer.resume(make_sampler(small_synthetic_server)) is False

    def test_cadence(self, tmp_path, small_synthetic_server):
        saves = []

        class CountingCheckpointer(SamplerCheckpointer):
            def save(self, sampler):
                saves.append(sampler.queries_run)
                super().save(sampler)

        checkpointer = CountingCheckpointer(tmp_path / "ckpt", every_queries=5)
        sampler = make_sampler(small_synthetic_server)
        sampler.run(MaxDocuments(80), checkpoint=checkpointer)
        # Periodic saves land every >= 5 queries; the final save is
        # unconditional (and may repeat the last periodic count).
        assert saves[-1] == sampler.queries_run
        periodic = saves[:-1]
        assert periodic, "an 80-document run must checkpoint at least once"
        assert all(b - a >= 5 for a, b in zip(periodic, periodic[1:]))

    @pytest.mark.parametrize("crash_on_save", [1, 2, 3])
    def test_killed_run_resumes_bit_identical(
        self, tmp_path, small_synthetic_server, crash_on_save
    ):
        budget = MaxDocuments(120)
        reference = make_sampler(small_synthetic_server)
        reference.run(budget)
        reference_bytes = dumps_language_model(reference.model)

        crashing = CrashingSamplerCheckpointer(
            tmp_path / "ckpt", every_queries=4, crash_on_save=crash_on_save
        )
        victim = make_sampler(small_synthetic_server)
        with pytest.raises(SimulatedCrash):
            victim.run(budget, checkpoint=crashing)

        # A fresh process: new sampler, new checkpointer, same directory.
        survivor = make_sampler(small_synthetic_server)
        checkpointer = SamplerCheckpointer(tmp_path / "ckpt", every_queries=4)
        resumed = checkpointer.resume(survivor)
        # crash_on_save=1 kills the first write: nothing durable, the
        # rerun starts from scratch — and must still match.
        assert resumed == (crash_on_save > 1)
        if resumed:
            assert 0 < survivor.documents_examined < 120
        survivor.run(budget, checkpoint=checkpointer)

        assert dumps_language_model(survivor.model) == reference_bytes
        assert survivor.queries_run == reference.queries_run
        assert survivor.documents_examined == reference.documents_examined == 120
        # The entire resumable state matches, not just the model.
        assert survivor.state_dict() == reference.state_dict()

    def test_checkpointing_does_not_perturb_the_run(
        self, tmp_path, small_synthetic_server
    ):
        plain = make_sampler(small_synthetic_server)
        plain.run(MaxDocuments(90))
        observed = make_sampler(small_synthetic_server)
        observed.run(
            MaxDocuments(90),
            checkpoint=SamplerCheckpointer(tmp_path / "ckpt", every_queries=3),
        )
        assert dumps_language_model(observed.model) == dumps_language_model(plain.model)

    def test_resume_rejects_mismatched_construction(
        self, tmp_path, small_synthetic_server
    ):
        checkpointer = SamplerCheckpointer(tmp_path / "ckpt")
        sampler = make_sampler(small_synthetic_server, seed=7)
        sampler.run(MaxDocuments(40), checkpoint=checkpointer)
        other = make_sampler(small_synthetic_server, seed=8)
        with pytest.raises(ValueError, match="seed"):
            SamplerCheckpointer(tmp_path / "ckpt").resume(other)

    def test_resume_rejects_foreign_file(self, tmp_path, small_synthetic_server):
        directory = tmp_path / "ckpt"
        directory.mkdir()
        (directory / SamplerCheckpointer.FILENAME).write_text(
            json.dumps({"schema": "something-else/1"})
        )
        with pytest.raises(CheckpointMismatchError, match="schema"):
            SamplerCheckpointer(directory).resume(make_sampler(small_synthetic_server))

    def test_rejects_bad_cadence(self, tmp_path):
        with pytest.raises(ValueError, match="every_queries"):
            SamplerCheckpointer(tmp_path, every_queries=0)


@pytest.fixture(scope="module")
def pool_servers() -> dict[str, DatabaseServer]:
    corpus = cacm_like().build(seed=31, scale=0.3)
    parts = partition_round_robin(corpus, 3)
    return {part.name: DatabaseServer(part) for part in parts}


def make_pool(servers, scheduler: str) -> SamplingPool:
    return SamplingPool(
        servers,
        lambda name: RandomFromOther(servers[name].actual_language_model()),
        scheduler=scheduler,
        increment=20,
        config=SamplerConfig(snapshot_interval=20, keep_documents=False),
        seed=3,
    )


class TestPoolCheckpointer:
    @pytest.mark.parametrize("scheduler", ["uniform", "round_robin", "convergence"])
    @pytest.mark.parametrize("crash_on_save", [2, 4])
    def test_killed_pool_run_resumes_bit_identical(
        self, tmp_path, pool_servers, scheduler, crash_on_save
    ):
        total = 120
        reference = make_pool(pool_servers, scheduler).run(total)
        reference_bytes = {
            name: dumps_language_model(run.model)
            for name, run in reference.runs.items()
        }

        directory = tmp_path / "ckpt"
        victim = make_pool(pool_servers, scheduler)
        with pytest.raises(SimulatedCrash):
            victim.run(total, checkpoint=CrashingPoolCheckpointer(directory, crash_on_save))

        survivor = make_pool(pool_servers, scheduler)
        result = survivor.run(total, checkpoint=PoolCheckpointer(directory))

        assert {
            name: dumps_language_model(run.model) for name, run in result.runs.items()
        } == reference_bytes
        assert result.total_documents == reference.total_documents == total
        assert result.total_queries == reference.total_queries
        assert {name: run.stop_reason for name, run in result.runs.items()} == {
            name: run.stop_reason for name, run in reference.runs.items()
        }

    def test_completed_run_resumes_as_noop(self, tmp_path, pool_servers):
        directory = tmp_path / "ckpt"
        first = make_pool(pool_servers, "round_robin")
        first.run(100, checkpoint=PoolCheckpointer(directory))
        queries_after_first = {
            name: sampler.queries_run for name, sampler in first.samplers.items()
        }

        again = make_pool(pool_servers, "round_robin")
        result = again.run(100, checkpoint=PoolCheckpointer(directory))
        # No budget is respent: the resumed run replays to the same
        # final state without issuing a single new query.
        assert {
            name: sampler.queries_run for name, sampler in again.samplers.items()
        } == queries_after_first
        assert result.total_documents == 100

    def test_resume_rejects_different_budget(self, tmp_path, pool_servers):
        directory = tmp_path / "ckpt"
        make_pool(pool_servers, "uniform").run(90, checkpoint=PoolCheckpointer(directory))
        with pytest.raises(CheckpointMismatchError, match="total_documents"):
            make_pool(pool_servers, "uniform").run(
                120, checkpoint=PoolCheckpointer(directory)
            )

    def test_resume_rejects_different_scheduler(self, tmp_path, pool_servers):
        directory = tmp_path / "ckpt"
        make_pool(pool_servers, "uniform").run(90, checkpoint=PoolCheckpointer(directory))
        with pytest.raises(CheckpointMismatchError, match="scheduler"):
            make_pool(pool_servers, "round_robin").run(
                90, checkpoint=PoolCheckpointer(directory)
            )

    def test_resume_rejects_different_databases(self, tmp_path, pool_servers):
        directory = tmp_path / "ckpt"
        make_pool(pool_servers, "uniform").run(90, checkpoint=PoolCheckpointer(directory))
        subset = dict(list(pool_servers.items())[:2])
        with pytest.raises(CheckpointMismatchError, match="databases"):
            make_pool(subset, "uniform").run(90, checkpoint=PoolCheckpointer(directory))
