"""Tests for repro.experiments (testbed, runner, reporting)."""

from __future__ import annotations

import pytest

from repro.experiments.reporting import curve_series, format_series, format_table
from repro.experiments.runner import (
    CurvePoint,
    LearningCurve,
    average_curves,
    measure_run,
    rdiff_series,
    run_sampling,
)
from repro.experiments.testbed import Testbed as ExperimentTestbed
from repro.sampling import RandomFromOther


@pytest.fixture(scope="module")
def run_and_server(small_synthetic_server):
    run = run_sampling(
        small_synthetic_server,
        bootstrap=RandomFromOther(small_synthetic_server.actual_language_model()),
        max_documents=150,
        seed=1,
    )
    return run, small_synthetic_server


class TestRunSampling:
    def test_budget_respected(self, run_and_server):
        run, _ = run_and_server
        assert run.documents_examined == 150

    def test_snapshots_every_50(self, run_and_server):
        run, _ = run_and_server
        assert [s.documents_examined for s in run.snapshots] == [50, 100, 150]


class TestMeasureRun:
    def test_curve_points_align_with_snapshots(self, run_and_server):
        run, server = run_and_server
        curve = measure_run(
            run,
            server.actual_language_model(),
            server.index.analyzer,
            database="small",
            strategy="random_llm",
            docs_per_query=4,
        )
        assert [p.documents for p in curve.points] == [50, 100, 150]

    def test_metrics_monotone_enough(self, run_and_server):
        # ctf ratio and percentage learned are monotone in documents
        # examined (vocabulary only grows).
        run, server = run_and_server
        curve = measure_run(
            run,
            server.actual_language_model(),
            server.index.analyzer,
            database="small",
            strategy="random_llm",
            docs_per_query=4,
        )
        ctf_values = [p.ctf_ratio for p in curve.points]
        pct_values = [p.percentage_learned for p in curve.points]
        assert ctf_values == sorted(ctf_values)
        assert pct_values == sorted(pct_values)
        assert all(0 <= p.spearman <= 1 for p in curve.points)

    def test_documents_to_reach_ctf(self, run_and_server):
        run, server = run_and_server
        curve = measure_run(
            run,
            server.actual_language_model(),
            server.index.analyzer,
            "small",
            "random_llm",
            4,
        )
        reached = curve.documents_to_reach_ctf(0.5)
        assert reached in (50, 100, 150)
        assert curve.documents_to_reach_ctf(2.0) is None

    def test_value_at(self, run_and_server):
        run, server = run_and_server
        curve = measure_run(
            run,
            server.actual_language_model(),
            server.index.analyzer,
            "small",
            "random_llm",
            4,
        )
        assert curve.value_at(100, "ctf_ratio") == curve.points[1].ctf_ratio
        with pytest.raises(KeyError):
            curve.value_at(99, "ctf_ratio")


class TestRdiffSeries:
    def test_series_between_snapshots(self, run_and_server):
        run, _ = run_and_server
        series = rdiff_series(run)
        assert [documents for documents, _ in series] == [100, 150]
        assert all(0 <= value <= 1 for _, value in series)


class TestAverageCurves:
    def _curve(self, values):
        points = tuple(
            CurvePoint(documents=d, queries=d // 4, percentage_learned=v,
                       ctf_ratio=v, spearman=v)
            for d, v in values
        )
        return LearningCurve("db", "s", 4, points)

    def test_mean_of_values(self):
        merged = average_curves(
            [self._curve([(50, 0.2), (100, 0.4)]), self._curve([(50, 0.4), (100, 0.6)])]
        )
        assert [p.ctf_ratio for p in merged.points] == [
            pytest.approx(0.3),
            pytest.approx(0.5),
        ]

    def test_only_common_documents_kept(self):
        merged = average_curves(
            [self._curve([(50, 0.2), (100, 0.4)]), self._curve([(50, 0.4)])]
        )
        assert [p.documents for p in merged.points] == [50]

    def test_single_curve_passthrough(self):
        curve = self._curve([(50, 0.5)])
        assert average_curves([curve]) is curve

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_curves([])


class TestTestbedBuilder:
    def test_profiles_available(self):
        testbed = ExperimentTestbed(seed=0, scale=0.02)
        assert testbed.profile("cacm").name == "cacm"
        with pytest.raises(KeyError):
            testbed.profile("nope")

    def test_servers_cached(self):
        testbed = ExperimentTestbed(seed=0, scale=0.02)
        assert testbed.server("cacm") is testbed.server("cacm")

    def test_document_budget_capped_at_small_scale(self):
        testbed = ExperimentTestbed(seed=0, scale=0.02)
        budget = testbed.document_budget("cacm")
        corpus_size = testbed.server("cacm").num_documents
        assert budget == max(50, min(300, int(corpus_size * 0.4)))

    def test_scale_env_var(self, monkeypatch):
        from repro.experiments.testbed import default_scale

        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert default_scale() == 0.5
        monkeypatch.setenv("REPRO_SCALE", "zero")
        with pytest.raises(ValueError):
            default_scale()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            default_scale()


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"name": "cacm", "docs": 3204}, {"name": "wsj88", "docs": 39904}]
        text = format_table(rows, title="Corpora")
        lines = text.splitlines()
        assert lines[0] == "Corpora"
        assert "name" in lines[1] and "docs" in lines[1]
        assert "3,204" in text and "39,904" in text

    def test_format_table_handles_none(self):
        text = format_table([{"a": None}])
        assert "-" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="Empty")

    def test_format_series(self):
        series = {"cacm": [(50, 0.9), (100, 0.95)], "wsj88": [(50, 0.7)]}
        text = format_series(series, title="Fig")
        assert "0.9000" in text
        assert "documents" in text
        # wsj88 has no value at 100 → dash.
        last_line = text.splitlines()[-1]
        assert "-" in last_line

    def test_curve_series_extraction(self):
        points = (
            CurvePoint(50, 12, 0.1, 0.8, 0.6),
            CurvePoint(100, 25, 0.2, 0.9, 0.7),
        )
        curves = {"db": LearningCurve("db", "s", 4, points)}
        series = curve_series(curves, "spearman")
        assert series == {"db": [(50, 0.6), (100, 0.7)]}
