"""Unit tests for the durable job queue (repro.fleet.queue)."""

from __future__ import annotations

import json

import pytest

from repro.fleet import DurableJobQueue, JobState, LeaseLostError
from repro.obs import TraceRecorder
from repro.sampling.transport import SimulatedClock


@pytest.fixture
def clock() -> SimulatedClock:
    return SimulatedClock()


@pytest.fixture
def queue(tmp_path, clock) -> DurableJobQueue:
    return DurableJobQueue(
        tmp_path / "queue", lease_seconds=10.0, backoff_base=1.0, clock=clock
    )


class TestSubmit:
    def test_submit_creates_durable_file(self, queue):
        job = queue.submit("refresh_check", "newsdb", priority=2.5)
        assert job.state == JobState.PENDING
        assert job.priority == 2.5
        path = queue.jobs_dir / f"{job.job_id}.json"
        assert path.is_file()
        data = json.loads(path.read_text())
        assert data["schema"] == "repro-fleet-queue/1"
        assert data["database"] == "newsdb"

    def test_submit_is_idempotent_while_open(self, queue):
        first = queue.submit("refresh_check", "newsdb", priority=1.0)
        second = queue.submit("refresh_check", "newsdb", priority=9.0)
        assert second.job_id == first.job_id
        assert second.priority == 1.0  # the open job is returned unchanged
        assert queue.counts()[JobState.PENDING] == 1

    def test_done_job_can_be_resubmitted(self, queue):
        job = queue.submit("refresh_check", "newsdb")
        claimed = queue.claim("w1")
        queue.complete(claimed.job_id, claimed.lease.token)
        again = queue.submit("refresh_check", "newsdb")
        assert again.job_id == job.job_id
        assert again.state == JobState.PENDING

    def test_awkward_database_names_are_safe(self, queue):
        job = queue.submit("refresh_check", "db with spaces/and=slashes")
        assert (queue.jobs_dir / f"{job.job_id}.json").is_file()
        assert queue.get(job.job_id).database == "db with spaces/and=slashes"

    def test_validation(self, queue):
        with pytest.raises(ValueError):
            queue.submit("refresh_check", "x", max_attempts=0)
        with pytest.raises(ValueError):
            DurableJobQueue("/tmp/x", lease_seconds=0)


class TestClaim:
    def test_claims_highest_priority_first(self, queue):
        queue.submit("refresh_check", "low", priority=0.1)
        queue.submit("refresh_check", "high", priority=5.0)
        queue.submit("refresh_check", "mid", priority=2.0)
        order = [queue.claim("w1").database for _ in range(3)]
        assert order == ["high", "mid", "low"]

    def test_empty_queue_returns_none(self, queue):
        assert queue.claim("w1") is None

    def test_claim_stamps_a_lease(self, queue, clock):
        queue.submit("refresh_check", "newsdb")
        job = queue.claim("w1")
        assert job.state == JobState.LEASED
        assert job.attempts == 1
        assert job.lease.worker == "w1"
        assert job.lease.expires == clock.now + 10.0

    def test_leased_job_not_reclaimable_before_expiry(self, queue, clock):
        queue.submit("refresh_check", "newsdb")
        queue.claim("w1")
        clock.sleep(5.0)
        assert queue.claim("w2") is None

    def test_expired_lease_is_reclaimed(self, queue, clock):
        recorder = TraceRecorder()
        queue.recorder = recorder
        queue.submit("refresh_check", "newsdb")
        first = queue.claim("w1")
        clock.sleep(10.0)  # lease ages out: w1 presumably died
        second = queue.claim("w2")
        assert second is not None
        assert second.job_id == first.job_id
        assert second.lease.worker == "w2"
        assert second.attempts == 2
        assert recorder.metrics.counter("fleet.leases_expired").value == 1


class TestExactlyOnce:
    def test_complete_requires_the_lease_token(self, queue):
        queue.submit("refresh_check", "newsdb")
        job = queue.claim("w1")
        with pytest.raises(LeaseLostError):
            queue.complete(job.job_id, "forged-token")
        assert queue.complete(job.job_id, job.lease.token, {"refreshed": True})
        assert queue.get(job.job_id).result == {"refreshed": True}

    def test_dead_workers_completion_is_discarded(self, queue, clock):
        """The lease expired, someone else finished: the result must not
        double-apply."""
        queue.submit("refresh_check", "newsdb")
        first = queue.claim("w1")
        clock.sleep(10.0)
        second = queue.claim("w2")
        assert queue.complete(second.job_id, second.lease.token)
        # w1 wakes up late and tries to complete with its stale token.
        assert queue.complete(first.job_id, first.lease.token) is False
        assert queue.get(first.job_id).state == JobState.DONE

    def test_stale_token_fail_raises(self, queue, clock):
        queue.submit("refresh_check", "newsdb")
        first = queue.claim("w1")
        clock.sleep(10.0)
        queue.claim("w2")
        with pytest.raises(LeaseLostError):
            queue.fail(first.job_id, first.lease.token, "late failure")

    def test_extend_lease_heartbeat(self, queue, clock):
        queue.submit("refresh_check", "newsdb")
        job = queue.claim("w1")
        clock.sleep(8.0)
        queue.extend_lease(job.job_id, job.lease.token)
        clock.sleep(8.0)  # 16s since claim, but only 8 since heartbeat
        assert queue.claim("w2") is None


class TestRetry:
    def test_failed_attempt_backs_off_exponentially(self, queue, clock):
        queue.submit("refresh_check", "newsdb", max_attempts=3)
        job = queue.claim("w1")
        failed = queue.fail(job.job_id, job.lease.token, "transient")
        assert failed.state == JobState.PENDING
        assert failed.not_before == clock.now + 1.0  # base * mult**0
        assert queue.claim("w1") is None  # gate not open yet
        clock.sleep(1.0)
        second = queue.claim("w1")
        assert second.attempts == 2
        failed = queue.fail(second.job_id, second.lease.token, "transient")
        assert failed.not_before == clock.now + 2.0  # base * mult**1

    def test_attempts_exhausted_parks_as_failed(self, queue, clock):
        queue.submit("refresh_check", "newsdb", max_attempts=2)
        for _ in range(2):
            clock.sleep(100.0)
            job = queue.claim("w1")
            outcome = queue.fail(job.job_id, job.lease.token, "still broken")
        assert outcome.state == JobState.FAILED
        assert outcome.error == "still broken"
        clock.sleep(100.0)
        assert queue.claim("w1") is None  # failed jobs are not claimable
        assert queue.drained()


class TestDurability:
    def test_queue_state_survives_reopen(self, tmp_path, clock):
        first = DurableJobQueue(tmp_path / "q", clock=clock, lease_seconds=10.0)
        first.submit("refresh_check", "a", priority=1.0)
        first.submit("refresh_check", "b", priority=2.0)
        claimed = first.claim("w1")
        assert claimed.database == "b"

        # A fresh object over the same directory (a restarted process)
        # sees the same jobs: b still leased, a still pending.
        reopened = DurableJobQueue(tmp_path / "q", clock=clock, lease_seconds=10.0)
        counts = reopened.counts()
        assert counts[JobState.LEASED] == 1
        assert counts[JobState.PENDING] == 1
        assert reopened.claim("w2").database == "a"

    def test_crashed_workers_lease_expires_across_reopen(self, tmp_path, clock):
        first = DurableJobQueue(tmp_path / "q", clock=clock, lease_seconds=10.0)
        first.submit("refresh_check", "a")
        first.claim("dead-worker")
        clock.sleep(11.0)
        survivor = DurableJobQueue(tmp_path / "q", clock=clock, lease_seconds=10.0)
        job = survivor.claim("live-worker")
        assert job is not None
        assert job.lease.worker == "live-worker"
        assert survivor.complete(job.job_id, job.lease.token)
        assert survivor.drained()
