"""Unit tests for repro.summarize."""

from __future__ import annotations

import pytest

from repro.lm import LanguageModel
from repro.summarize import DatabaseSummary, format_summary_grid, summarize


@pytest.fixture
def model() -> LanguageModel:
    built = LanguageModel(name="support")
    # term → (df, ctf): "excel" is topically concentrated (high avg-tf),
    # "windows" broadly frequent, "the" a stopword, "ok" too short,
    # "1988" numeric, "hapax" appears once.
    stats = {
        "excel": (10, 80),
        "windows": (60, 90),
        "printer": (20, 30),
        "the": (90, 500),
        "ok": (40, 60),
        "1988": (15, 20),
        "hapax": (1, 9),
    }
    for term, (df, ctf) in stats.items():
        built.add_term(term, df=df, ctf=ctf)
    return built


class TestSummarize:
    def test_stopwords_excluded(self, model):
        assert "the" not in summarize(model).words

    def test_short_terms_excluded(self, model):
        assert "ok" not in summarize(model).words

    def test_numbers_excluded(self, model):
        assert "1988" not in summarize(model).words

    def test_min_df_filters_hapax(self, model):
        assert "hapax" not in summarize(model, min_df=2).words
        assert "hapax" in summarize(model, min_df=1).words

    def test_avg_tf_ranking(self, model):
        summary = summarize(model, rank_by="avg_tf")
        # excel avg-tf 8.0 > printer 1.5 ≈ windows 1.5
        assert summary.words[0] == "excel"

    def test_df_ranking(self, model):
        assert summarize(model, rank_by="df").words[0] == "windows"

    def test_ctf_ranking(self, model):
        assert summarize(model, rank_by="ctf").words[0] == "windows"

    def test_k_limits_output(self, model):
        assert len(summarize(model, k=2).terms) == 2

    def test_invalid_parameters(self, model):
        with pytest.raises(ValueError):
            summarize(model, k=0)
        with pytest.raises(ValueError):
            summarize(model, rank_by="idf")

    def test_metadata(self, model):
        summary = summarize(model, rank_by="df")
        assert summary.database == "support"
        assert summary.rank_by == "df"


class TestFormatGrid:
    def test_contains_all_terms(self, model):
        summary = summarize(model, rank_by="avg_tf")
        grid = format_summary_grid(summary, columns=2)
        for word in summary.words:
            assert word in grid

    def test_title_line(self, model):
        grid = format_summary_grid(summarize(model))
        assert "ranked by avg_tf" in grid.splitlines()[0]

    def test_empty_summary(self):
        grid = format_summary_grid(summarize(LanguageModel(name="empty"), k=5))
        assert "empty" in grid

    def test_invalid_columns(self, model):
        with pytest.raises(ValueError):
            format_summary_grid(summarize(model), columns=0)


class TestEmptyGrid:
    """format_summary_grid over a directly constructed empty summary."""

    def test_empty_summary_renders_header_only(self):
        summary = DatabaseSummary(database="void", rank_by="avg_tf", terms=())
        grid = format_summary_grid(summary)
        assert grid == "Top 0 terms of 'void' (ranked by avg_tf)"

    def test_empty_summary_any_column_count(self):
        summary = DatabaseSummary(database="void", rank_by="df", terms=())
        for columns in (1, 3, 10):
            assert format_summary_grid(summary, columns=columns).count("\n") == 0

    def test_empty_summary_still_validates_columns(self):
        summary = DatabaseSummary(database="void", rank_by="ctf", terms=())
        with pytest.raises(ValueError):
            format_summary_grid(summary, columns=0)
