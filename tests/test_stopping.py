"""Unit tests for repro.sampling.stopping."""

from __future__ import annotations

import pytest

from repro.lm import LanguageModel
from repro.sampling import AllOf, AnyOf, MaxDocuments, MaxQueries, RdiffConvergence
from repro.sampling.result import SamplerState, Snapshot


def state_with(documents: int = 0, queries: int = 0) -> SamplerState:
    return SamplerState(model=LanguageModel(), documents_examined=documents, queries_run=queries)


def snapshot(documents: int, term_freqs: dict[str, int]) -> Snapshot:
    model = LanguageModel()
    for term, freq in term_freqs.items():
        model.add_term(term, df=freq, ctf=freq)
    return Snapshot(documents_examined=documents, queries_run=documents // 4, model=model)


class TestBudgets:
    def test_max_documents(self):
        criterion = MaxDocuments(300)
        assert not criterion.should_stop(state_with(documents=299))
        assert criterion.should_stop(state_with(documents=300))

    def test_max_queries(self):
        criterion = MaxQueries(100)
        assert not criterion.should_stop(state_with(queries=99))
        assert criterion.should_stop(state_with(queries=100))

    @pytest.mark.parametrize("criterion_class", [MaxDocuments, MaxQueries])
    def test_invalid_limits(self, criterion_class):
        with pytest.raises(ValueError):
            criterion_class(0)

    def test_describe(self):
        assert MaxDocuments(300).describe() == "max_documents(300)"


class TestRdiffConvergence:
    def test_needs_enough_snapshots(self):
        criterion = RdiffConvergence(threshold=0.5, consecutive=2)
        state = state_with()
        state.snapshots = [snapshot(50, {"a": 5}), snapshot(100, {"a": 5})]
        # Two snapshots give one rdiff value; two consecutive values
        # need three snapshots.
        assert not criterion.should_stop(state)

    def test_stops_when_stable(self):
        criterion = RdiffConvergence(threshold=0.01, consecutive=2)
        state = state_with()
        stable = {"a": 9, "b": 5, "c": 2}
        state.snapshots = [
            snapshot(50, stable),
            snapshot(100, stable),
            snapshot(150, stable),
        ]
        assert criterion.should_stop(state)

    def test_does_not_stop_while_moving(self):
        criterion = RdiffConvergence(threshold=0.01, consecutive=2)
        state = state_with()
        state.snapshots = [
            snapshot(50, {"a": 9, "b": 5, "c": 2}),
            snapshot(100, {"a": 2, "b": 9, "c": 5}),  # big reshuffle
            snapshot(150, {"a": 5, "b": 2, "c": 9}),  # big reshuffle
        ]
        assert not criterion.should_stop(state)

    def test_requires_all_recent_spans_stable(self):
        criterion = RdiffConvergence(threshold=0.01, consecutive=2)
        state = state_with()
        stable = {"a": 9, "b": 5, "c": 2}
        state.snapshots = [
            snapshot(50, {"a": 2, "b": 9, "c": 5}),
            snapshot(100, stable),  # one unstable span just before
            snapshot(150, stable),
        ]
        assert not criterion.should_stop(state)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RdiffConvergence(threshold=0)
        with pytest.raises(ValueError):
            RdiffConvergence(consecutive=0)


class TestCombinators:
    def test_any_of(self):
        criterion = AnyOf([MaxDocuments(10), MaxQueries(5)])
        assert criterion.should_stop(state_with(documents=10, queries=0))
        assert criterion.should_stop(state_with(documents=0, queries=5))
        assert not criterion.should_stop(state_with(documents=9, queries=4))

    def test_all_of(self):
        criterion = AllOf([MaxDocuments(10), MaxQueries(5)])
        assert not criterion.should_stop(state_with(documents=10, queries=0))
        assert criterion.should_stop(state_with(documents=10, queries=5))

    def test_empty_combinators_rejected(self):
        with pytest.raises(ValueError):
            AnyOf([])
        with pytest.raises(ValueError):
            AllOf([])

    def test_describe_nests(self):
        description = AnyOf([MaxDocuments(3), MaxQueries(4)]).describe()
        assert "max_documents(3)" in description
        assert "max_queries(4)" in description
