"""Unit tests for repro.dbselect.redde."""

from __future__ import annotations

import pytest

from repro.corpus import Document
from repro.dbselect import ReddeSelector
from repro.text import Analyzer


def docs(prefix: str, texts: list[str]) -> list[Document]:
    return [
        Document(doc_id=f"{prefix}-{i}", text=text) for i, text in enumerate(texts)
    ]


@pytest.fixture
def samples() -> dict[str, list[Document]]:
    return {
        "finance": docs(
            "fin",
            [
                "stock market rally continues",
                "bond market yields fall",
                "market traders buy stock",
            ],
        ),
        "sports": docs(
            "spo",
            [
                "football team wins match",
                "team plays championship football",
            ],
        ),
        "cooking": docs("coo", ["bread recipe with honey"]),
    }


class TestReddeRanking:
    def test_topical_query_routes_to_topical_source(self, samples):
        selector = ReddeSelector(samples, top_n=10, analyzer=Analyzer.raw())
        assert selector.rank("stock market").names[0] == "finance"
        assert selector.rank("football team").names[0] == "sports"

    def test_size_scaling_changes_votes(self, samples):
        # Without scaling, finance (3 sample docs about markets) wins a
        # generic query; scaling cooking's one sampled doc up 1000x
        # makes each of its votes worth far more.
        unscaled = ReddeSelector(samples, top_n=10, analyzer=Analyzer.raw())
        scaled = ReddeSelector(
            samples,
            estimated_sizes={"finance": 3.0, "sports": 2.0, "cooking": 1000.0},
            top_n=10,
            analyzer=Analyzer.raw(),
        )
        query = "bread recipe"
        assert unscaled.rank(query).names[0] == "cooking"
        scaled_ranking = scaled.rank(query)
        assert scaled_ranking.names[0] == "cooking"
        assert scaled_ranking.entries[0].score == pytest.approx(1000.0)

    def test_unmatched_query_all_zero(self, samples):
        selector = ReddeSelector(samples, top_n=10, analyzer=Analyzer.raw())
        ranking = selector.rank("xylophone")
        assert all(entry.score == 0.0 for entry in ranking.entries)
        assert sorted(ranking.names) == sorted(samples)

    def test_models_argument_ignored(self, samples):
        selector = ReddeSelector(samples, top_n=10, analyzer=Analyzer.raw())
        with_arg = selector.rank("stock market", models={"whatever": object()})
        without = selector.rank("stock market")
        assert with_arg.names == without.names

    def test_missing_size_estimate_falls_back_to_sample_size(self, samples):
        selector = ReddeSelector(
            samples,
            estimated_sizes={"finance": 300.0},  # others missing
            top_n=10,
            analyzer=Analyzer.raw(),
        )
        ranking = selector.rank("football team")
        sports_score = dict((e.name, e.score) for e in ranking.entries)["sports"]
        # Unscaled votes: each sports doc votes with weight 1.
        assert sports_score == pytest.approx(2.0)

    def test_top_n_limits_votes(self, samples):
        narrow = ReddeSelector(samples, top_n=1, analyzer=Analyzer.raw())
        ranking = narrow.rank("market stock football")
        total_votes = sum(entry.score for entry in ranking.entries)
        assert total_votes == pytest.approx(1.0)

    def test_validation(self, samples):
        with pytest.raises(ValueError):
            ReddeSelector({})
        with pytest.raises(ValueError):
            ReddeSelector(samples, top_n=0)
        with pytest.raises(ValueError):
            ReddeSelector({"empty": []})

    def test_stemmed_central_index_by_default(self, samples):
        selector = ReddeSelector(samples, top_n=10)
        # Default analyzer stems: "markets" matches "market".
        assert selector.rank("markets").names[0] == "finance"
