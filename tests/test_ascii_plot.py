"""Unit tests for repro.experiments.ascii_plot."""

from __future__ import annotations

import pytest

from repro.experiments.ascii_plot import plot_series


@pytest.fixture
def series():
    return {
        "cacm": [(50, 0.6), (100, 0.8), (150, 0.9)],
        "wsj88": [(50, 0.5), (100, 0.6), (150, 0.7)],
    }


class TestPlotSeries:
    def test_contains_title_and_legend(self, series):
        text = plot_series(series, title="My Figure")
        assert text.splitlines()[0] == "My Figure"
        assert "c=cacm" in text
        assert "w=wsj88" in text

    def test_axis_labels(self, series):
        text = plot_series(series)
        assert "0.9" in text  # y max
        assert "0.5" in text  # y min
        assert "50" in text and "150" in text

    def test_markers_present(self, series):
        text = plot_series(series)
        body = "\n".join(line for line in text.splitlines() if "|" in line)
        assert body.count("c") >= 3
        assert body.count("w") >= 3

    def test_dimensions(self, series):
        text = plot_series(series, title=None, width=40, height=8)
        chart_lines = [line for line in text.splitlines() if "|" in line]
        assert len(chart_lines) == 8
        for line in chart_lines:
            assert len(line.split("|", 1)[1]) <= 40

    def test_marker_collision_resolved(self):
        series = {"cacm": [(1, 1.0)], "cacm2": [(2, 2.0)]}
        text = plot_series(series)
        assert "c=cacm" in text
        assert "1=cacm2" in text

    def test_single_point(self):
        text = plot_series({"only": [(5, 5.0)]})
        assert "o=only" in text

    def test_empty(self):
        assert "(no data)" in plot_series({}, title="Empty")

    def test_invalid_dimensions(self, series):
        with pytest.raises(ValueError):
            plot_series(series, width=5)
        with pytest.raises(ValueError):
            plot_series(series, height=2)

    def test_higher_y_plots_higher(self):
        series = {"a": [(0, 0.0), (10, 10.0)]}
        text = plot_series(series, width=20, height=10)
        chart_lines = [line for line in text.splitlines() if "|" in line]
        top_line = next(i for i, line in enumerate(chart_lines) if "a" in line)
        bottom_line = max(i for i, line in enumerate(chart_lines) if "a" in line)
        assert top_line < bottom_line
