"""Scalar ↔ array equivalence sweep for the index/search/lm hot paths.

The array index core (:mod:`repro.index.inverted`), the batched
multi-term scorer (:class:`repro.index.search.SearchEngine`), and
batched language model ingestion
(:meth:`repro.lm.model.LanguageModel.add_documents`) all replaced
straightforward pure-python loops that survive in
:mod:`repro.index.reference`.  These tests pin the equivalence
contract:

* index statistics (df, ctf, postings, doc lengths, vocabulary
  *order*) match the scalar build **bit-identically**;
* search rankings match the scalar scatter-add search exactly, with
  scores equal to 1e-9;
* a model built by batched ``add_documents`` equals one built by the
  one-document-at-a-time loop, counter for counter;
* the bytes tokenization used by the array build produces exactly the
  regex tokenizer's tokens, including on non-ASCII input.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus import Corpus, Document
from repro.index import (
    Bm25Scorer,
    InqueryScorer,
    InvertedIndex,
    SearchEngine,
    TfIdfScorer,
    add_documents_scalar,
    build_index_scalar,
    search_scalar,
)
from repro.lm import LanguageModel
from repro.synth import wsj88_like
from repro.text import Analyzer, Tokenizer


def _corpus(texts: list[str], name: str = "equiv") -> Corpus:
    corpus = Corpus(name=name)
    for i, text in enumerate(texts):
        corpus.add(Document(doc_id=f"d{i}", text=text))
    return corpus


@pytest.fixture(scope="module")
def synth_corpus() -> Corpus:
    return wsj88_like().build(seed=7, scale=0.02)


SMALL_TEXTS = [
    "the quick brown fox jumps over the lazy dog",
    "pack my box with five dozen liquor jugs",
    "the dog barks at the quick fox and the fox runs",
    "",
    "numbers 123 456 and words mixed 7th heaven",
    "Repeated repeated REPEATED tokens tokens",
]


ANALYZERS = [Analyzer.inquery_style(), Analyzer.raw()]


@pytest.mark.parametrize("analyzer", ANALYZERS, ids=["inquery", "raw"])
class TestIndexStatisticsBitIdentical:
    def _assert_equivalent(self, corpus: Corpus, analyzer: Analyzer) -> None:
        index = InvertedIndex(corpus, analyzer)
        scalar = build_index_scalar(corpus, analyzer)
        assert list(index.vocabulary) == scalar.vocabulary
        assert np.array_equal(index.doc_lengths, scalar.doc_lengths)
        for term in scalar.vocabulary:
            assert index.df(term) == scalar.df[term]
            assert index.ctf(term) == scalar.ctf[term]
            posting = index.postings(term)
            assert posting is not None
            docs, tfs = scalar.postings[term]
            assert tuple(posting.doc_indices.tolist()) == docs
            assert tuple(posting.term_frequencies.tolist()) == tfs

    def test_small_corpus(self, analyzer):
        self._assert_equivalent(_corpus(SMALL_TEXTS), analyzer)

    def test_synthetic_corpus(self, analyzer, synth_corpus):
        self._assert_equivalent(synth_corpus, analyzer)

    def test_empty_corpus(self, analyzer):
        index = InvertedIndex(_corpus([]), analyzer)
        assert index.num_documents == 0
        assert index.vocabulary_size == 0
        assert index.doc_lengths.size == 0

    def test_all_documents_empty(self, analyzer):
        self._assert_equivalent(_corpus(["", "   ", "..."]), analyzer)


@pytest.mark.parametrize(
    "scorer",
    [TfIdfScorer(), Bm25Scorer(), InqueryScorer()],
    ids=lambda scorer: type(scorer).__name__,
)
class TestSearchMatchesScalar:
    def _assert_same_ranking(self, engine, index, scorer, query, n=10):
        batched = engine.search(query, n=n)
        scalar = search_scalar(index, scorer, query, n=n)
        assert [r.doc_index for r in batched] == [r.doc_index for r in scalar]
        assert [r.doc_id for r in batched] == [r.doc_id for r in scalar]
        for got, want in zip(batched, scalar):
            assert got.score == pytest.approx(want.score, abs=1e-9)

    def test_single_and_multi_term_queries(self, scorer, synth_corpus):
        index = InvertedIndex(synth_corpus)
        engine = SearchEngine(index, scorer)
        model = index.language_model()
        frequent = [stats.term for stats in model.top_terms(12, key="ctf")]
        for term in frequent[:5]:
            self._assert_same_ranking(engine, index, scorer, term)
        for i in range(0, 9, 3):
            query = " ".join(frequent[i : i + 3])
            self._assert_same_ranking(engine, index, scorer, query)

    def test_query_with_unknown_terms(self, scorer, synth_corpus):
        index = InvertedIndex(synth_corpus)
        engine = SearchEngine(index, scorer)
        model = index.language_model()
        known = model.top_terms(1, key="ctf")[0].term
        self._assert_same_ranking(engine, index, scorer, f"{known} zzzunseenzzz")

    def test_empty_index_search(self, scorer):
        index = InvertedIndex(_corpus([]))
        engine = SearchEngine(index, scorer)
        assert engine.search("anything", n=5) == []


class TestDuplicateQueryTerms:
    """Pinned semantics: duplicate query terms are deduplicated.

    ``cat cat`` must score identically to ``cat`` — each distinct term
    contributes once, matching the scalar reference and most real
    retrieval engines' bag-of-*distinct*-terms treatment of short
    queries.
    """

    @pytest.fixture()
    def engine(self):
        corpus = _corpus(
            [
                "cat cat cat dog",
                "cat dog dog",
                "dog dog dog dog",
            ]
        )
        return SearchEngine(InvertedIndex(corpus, Analyzer.raw()))

    def test_duplicate_term_scores_once(self, engine):
        once = engine.search("cat", n=10)
        twice = engine.search("cat cat", n=10)
        assert [(r.doc_index, r.score) for r in twice] == [
            (r.doc_index, r.score) for r in once
        ]

    def test_duplicates_in_multi_term_query(self, engine):
        plain = engine.search("cat dog", n=10)
        doubled = engine.search("cat dog cat dog dog", n=10)
        assert [(r.doc_index, r.score) for r in doubled] == [
            (r.doc_index, r.score) for r in plain
        ]


class TestModelIngestionEquivalence:
    def _documents(self, corpus: Corpus, analyzer: Analyzer) -> list[list[str]]:
        return [analyzer.analyze(document.text) for document in corpus]

    def test_batched_equals_scalar(self, synth_corpus):
        documents = self._documents(synth_corpus, Analyzer.inquery_style())
        batched = LanguageModel("batched")
        batched.add_documents(documents)
        scalar = LanguageModel("scalar")
        add_documents_scalar(scalar, documents)
        assert len(batched) == len(scalar)
        # Batched ingestion sorts terms (np.unique), so insertion order
        # differs; the contract is on the statistics, not dict order.
        assert batched.vocabulary == scalar.vocabulary
        for term in scalar:
            assert batched.df(term) == scalar.df(term)
            assert batched.ctf(term) == scalar.ctf(term)
        assert batched.documents_seen == scalar.documents_seen
        assert batched.tokens_seen == scalar.tokens_seen
        assert batched.total_ctf == scalar.total_ctf

    def test_empty_documents_count(self):
        batched = LanguageModel("batched")
        batched.add_documents([[], ["alpha"], []])
        scalar = LanguageModel("scalar")
        add_documents_scalar(scalar, [[], ["alpha"], []])
        assert batched.documents_seen == scalar.documents_seen == 3
        assert batched.ctf("alpha") == scalar.ctf("alpha") == 1

    def test_empty_batch_is_noop(self):
        model = LanguageModel()
        model.add_documents([])
        assert model.documents_seen == 0
        assert len(model) == 0


class TestBytesTokenizationEquivalence:
    """token_bytes must reproduce the regex tokenizer's runs exactly."""

    CASES = [
        "plain ascii words",
        "MiXeD CaSe AND digits 123abc",
        "punct,separated;tokens:here!",
        "Héllo wörld 123 The-End café naïve ٣٤ x",
        "tabs\tand\nnewlines\r\nsplit too",
        "",
        "...---...",
        "a" * 300 + " edge",
    ]

    @pytest.mark.parametrize("lowercase", [True, False])
    def test_matches_raw_tokens(self, lowercase):
        # The regex character class is ASCII-only, so every raw token is
        # ASCII and every non-ASCII character is a boundary — exactly
        # what encode("ascii", "replace") + translate reproduces.
        tokenizer = Tokenizer(lowercase=lowercase)
        for text in self.CASES:
            expected = [
                token.lower() if lowercase else token
                for token in tokenizer.raw_tokens(text)
            ]
            got = [token.decode("ascii") for token in tokenizer.token_bytes(text)]
            assert got == expected, text

    def test_non_ascii_is_boundary(self):
        tokenizer = Tokenizer()
        assert tokenizer.token_bytes("café naïve") == [b"caf", b"na", b"ve"]

    def test_index_build_on_unicode_text(self):
        corpus = _corpus(["Héllo wörld café", "hllo wrld caf"])
        index = InvertedIndex(corpus, Analyzer.raw())
        scalar = build_index_scalar(corpus, Analyzer.raw())
        assert list(index.vocabulary) == scalar.vocabulary
        for term in scalar.vocabulary:
            assert index.df(term) == scalar.df[term]
            assert index.ctf(term) == scalar.ctf[term]
