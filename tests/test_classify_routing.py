"""Topic-aware routing: the router's decisions, the serving pin, persistence.

Three layers:

* :class:`TopicRouter` unit behaviour on hand-built classifications —
  every fallback reason, ranked-order preservation, explicit topic
  requests;
* the acceptance pin — on a topically skewed federation, routed
  serving searches measurably fewer databases per query than broadcast
  without losing topical precision;
* persistence — save/load round-trip and warm-started routing through
  :meth:`FederationFrontend.from_store`.
"""

from __future__ import annotations

import json

import pytest

from repro.classify import (
    ClassifyParameters,
    QueryProbeClassifier,
    RequestRouting,
    TopicRouter,
    build_probe_set,
    load_router,
    save_router,
)
from repro.classify.classifier import DatabaseClassification, TopicScore
from repro.classify.persist import CLASSIFICATIONS_FILE
from repro.dbselect.base import finish_ranking
from repro.federation.service import FederatedSearchService, SearchRequest
from repro.federation.testbed import (
    build_skewed_partition,
    relevance_counts,
    topical_queries,
)
from repro.index import DatabaseServer
from repro.serving.frontend import FederationFrontend
from repro.store import open_store
from repro.synth.profiles import PROFILES_BY_NAME


def _classification(name: str, *topics: str) -> DatabaseClassification:
    scores = tuple(
        TopicScore(topic=topic, coverage=10.0, specificity=0.5) for topic in topics
    )
    return DatabaseClassification(
        database=name,
        scores=scores,
        assigned=topics,
        confidence=0.5 if topics else 0.0,
        probes_issued=4,
    )


@pytest.fixture
def hand_router() -> TopicRouter:
    return TopicRouter(
        {
            "dbA": _classification("dbA", "sports"),
            "dbB": _classification("dbB", "finance"),
            "dbC": _classification("dbC"),
        },
        {"sports": {"football": 1.0}, "finance": {"stock": 1.0}},
        min_confidence=0.25,
    )


RANKING = finish_ranking("q", {"dbA": 0.3, "dbB": 0.5, "dbC": 0.4})


class TestRouterDecisions:
    def test_routed_query_restricts_to_topic_members(self, hand_router):
        selected, decision = hand_router.route("football season", RANKING, 2)
        assert selected == ("dbA",)
        assert decision.mode == "routed"
        assert decision.topics == ("sports",)
        assert not decision.fell_back

    def test_ranking_order_is_preserved(self, hand_router):
        # Both topics match with equal weight: candidates are dbA+dbB,
        # and the selector's order (dbB before dbA) must survive.
        selected, decision = hand_router.route("football stock", RANKING, 2)
        assert selected == ("dbB", "dbA")
        assert decision.mode == "routed"
        assert set(decision.topics) == {"sports", "finance"}

    def test_no_topic_match_broadcasts(self, hand_router):
        selected, decision = hand_router.route("zebra xylophone", RANKING, 2)
        assert selected == ("dbB", "dbC")
        assert decision.fell_back and decision.reason == "no_topic_match"

    def test_low_confidence_broadcasts(self, hand_router):
        # Two topics split the matched weight evenly: confidence 0.5,
        # below a floor of 0.9.
        selected, decision = hand_router.route(
            "football stock",
            RANKING,
            2,
            requested=RequestRouting(min_confidence=0.9),
        )
        assert selected == ("dbB", "dbC")
        assert decision.fell_back and decision.reason == "low_confidence"
        assert decision.confidence == pytest.approx(0.5)

    def test_requested_topics_skip_matching(self, hand_router):
        selected, decision = hand_router.route(
            "anything at all",
            RANKING,
            2,
            requested=RequestRouting(topics=("finance",)),
        )
        assert selected == ("dbB",)
        assert decision.confidence == 1.0

    def test_unknown_requested_topic_falls_back(self, hand_router):
        selected, decision = hand_router.route(
            "anything", RANKING, 2, requested=RequestRouting(topics=("cooking",))
        )
        assert selected == ("dbB", "dbC")
        assert decision.fell_back and decision.reason == "no_candidates"

    def test_service_without_router_reports_no_router(self):
        space = PROFILES_BY_NAME["cacm"]().build(seed=0, scale=0.05)
        parts = build_skewed_partition(space, num_databases=2, seed=0)
        service = FederatedSearchService(
            {part.name: DatabaseServer(part) for part in parts},
            databases_per_query=2,
        )
        service.use_models(
            {
                part.name: DatabaseServer(part).actual_language_model()
                for part in parts
            }
        )
        response = service.search(
            SearchRequest(query="system", routing=RequestRouting(topics=("x",)))
        )
        assert response.routing is not None
        assert response.routing.reason == "no_router"


@pytest.fixture(scope="module")
def federation():
    """Skewed wsj88 federation + classified router, shared by the pins."""
    corpus = PROFILES_BY_NAME["wsj88"]().build(seed=0, scale=0.02)
    parts = build_skewed_partition(corpus, num_databases=4, seed=0)
    servers = {part.name: DatabaseServer(part) for part in parts}
    models = {name: server.actual_language_model() for name, server in servers.items()}
    space = PROFILES_BY_NAME["wsj88"]().topic_space(seed=0, scale=0.02)
    probe_set = build_probe_set(space, seed=0)
    classifier = QueryProbeClassifier(probe_set, ClassifyParameters())
    router = TopicRouter.from_probes(probe_set, classifier.classify_all(servers))
    return parts, servers, models, router


class TestRoutedServingPin:
    def test_routed_fanout_beats_broadcast_at_matched_quality(self, federation):
        parts, servers, models, router = federation
        broadcast = FederatedSearchService(servers, databases_per_query=3)
        broadcast.use_models(models)
        routed = FederatedSearchService(servers, databases_per_query=3, router=router)
        routed.use_models(models)

        queries = topical_queries(parts)
        assert queries
        fanout = {"broadcast": 0, "routed": 0}
        precision = {"broadcast": 0.0, "routed": 0.0}
        for query in queries:
            relevant = {
                name
                for name, count in relevance_counts(parts, query.topic).items()
                if count > 0
            }
            for label, service in (("broadcast", broadcast), ("routed", routed)):
                response = service.search(SearchRequest(query=query.text, n=10))
                fanout[label] += len(response.searched)
                hits = [r for r in response.results if r.database in relevant]
                precision[label] += len(hits) / max(len(response.results), 1)

        # The acceptance pin: measurably fewer databases searched per
        # query, at no topical-precision cost.
        assert fanout["routed"] < fanout["broadcast"]
        assert precision["routed"] >= precision["broadcast"] - 1e-9

    def test_routed_response_reports_decisions(self, federation):
        parts, servers, models, router = federation
        service = FederatedSearchService(servers, databases_per_query=3, router=router)
        service.use_models(models)
        query = topical_queries(parts)[0]
        response = service.search(SearchRequest(query=query.text))
        assert response.routing is not None
        assert response.routing.mode in ("routed", "broadcast")
        if response.routing.mode == "routed":
            assert len(response.searched) <= response.routing.candidates


class TestPersistence:
    def test_round_trip_preserves_everything(self, federation, tmp_path):
        _, _, _, router = federation
        save_router(router, tmp_path)
        loaded = load_router(tmp_path)
        assert loaded is not None
        assert loaded.to_payload() == router.to_payload()

    def test_missing_file_loads_as_none(self, tmp_path):
        assert load_router(tmp_path) is None

    def test_unknown_schema_loads_as_none(self, tmp_path):
        (tmp_path / CLASSIFICATIONS_FILE).write_text(
            json.dumps({"schema": "repro-classify/99"})
        )
        assert load_router(tmp_path) is None

    def test_corrupt_file_raises(self, tmp_path):
        (tmp_path / CLASSIFICATIONS_FILE).write_text("{not json")
        with pytest.raises(ValueError):
            load_router(tmp_path)

    def test_from_store_warm_starts_routing(self, federation, tmp_path):
        parts, servers, models, router = federation
        service = FederatedSearchService(servers, databases_per_query=3)
        service.use_models(models)
        store = open_store(tmp_path / "store")
        service.save_models(store)
        save_router(router, store)

        fresh = FederatedSearchService(servers, databases_per_query=3)
        with FederationFrontend.from_store(fresh, store) as frontend:
            assert frontend.service.router is not None
            query = topical_queries(parts)[0]
            response = frontend.search(SearchRequest(query=query.text))
            assert response.routing is not None

    def test_from_store_without_classifications_broadcasts(
        self, federation, tmp_path
    ):
        parts, servers, models, _ = federation
        service = FederatedSearchService(servers, databases_per_query=3)
        service.use_models(models)
        store = open_store(tmp_path / "store")
        service.save_models(store)

        fresh = FederatedSearchService(servers, databases_per_query=3)
        with FederationFrontend.from_store(fresh, store) as frontend:
            assert frontend.service.router is None
            response = frontend.search(SearchRequest(query="anything"))
            assert response.routing is None
