"""Unit tests for repro.index.server."""

from __future__ import annotations

import pytest

from repro.corpus import Corpus, Document
from repro.index import DatabaseServer
from repro.index.server import ServerPolicy


class TestRunQuery:
    def test_returns_full_documents(self, tiny_server):
        documents = tiny_server.run_query("apple", max_docs=3)
        assert documents
        assert all(isinstance(d, Document) for d in documents)
        assert all("apple" in d.text.lower() for d in documents)

    def test_respects_max_docs(self, tiny_server):
        assert len(tiny_server.run_query("apple", max_docs=1)) == 1

    def test_failed_query_returns_empty(self, tiny_server):
        assert tiny_server.run_query("zebra", max_docs=4) == []

    def test_stopword_query_fails(self, tiny_server):
        # "the" is a stopword to the server's (inquery-style) index.
        assert tiny_server.run_query("the", max_docs=4) == []

    def test_invalid_max_docs(self, tiny_server):
        with pytest.raises(ValueError):
            tiny_server.run_query("apple", max_docs=0)

    def test_results_cap_policy(self, tiny_corpus):
        server = DatabaseServer(tiny_corpus, policy=ServerPolicy(max_results_per_query=1))
        assert len(server.run_query("apple", max_docs=10)) == 1


class TestCostAccounting:
    def test_queries_counted(self, tiny_corpus):
        server = DatabaseServer(tiny_corpus)
        server.run_query("apple", max_docs=2)
        server.run_query("zebra", max_docs=2)
        assert server.costs.queries_run == 2
        assert server.costs.failed_queries == 1

    def test_documents_and_bytes_counted(self, tiny_corpus):
        server = DatabaseServer(tiny_corpus)
        documents = server.run_query("apple", max_docs=3)
        assert server.costs.documents_returned == len(documents)
        assert server.costs.bytes_returned == sum(d.size_bytes for d in documents)

    def test_reset(self, tiny_corpus):
        server = DatabaseServer(tiny_corpus)
        server.run_query("apple", max_docs=2)
        server.reset_costs()
        assert server.costs.queries_run == 0
        assert server.costs.bytes_returned == 0

    def test_erroring_query_still_metered(self, tiny_corpus, monkeypatch):
        # A query that dies mid-execution was still attempted — the
        # meters must count it or retried queries look free (Ext-10).
        server = DatabaseServer(tiny_corpus)
        server.run_query("apple", max_docs=2)

        def explode(*args, **kwargs):
            raise RuntimeError("scorer blew up")

        monkeypatch.setattr(server.engine, "search", explode)
        with pytest.raises(RuntimeError):
            server.run_query("honey", max_docs=2)
        assert server.costs.queries_run == 2
        # Errored and empty-result queries are metered separately; the
        # derived total preserves the old combined notion.
        assert server.costs.failed_queries == 0
        assert server.costs.errored_queries == 1
        assert server.costs.unsuccessful_queries == 1

    def test_failed_and_errored_meters_disjoint(self, tiny_corpus, monkeypatch):
        server = DatabaseServer(tiny_corpus)
        server.run_query("zebra", max_docs=2)  # completes, matches nothing
        assert (server.costs.failed_queries, server.costs.errored_queries) == (1, 0)

        def explode(*args, **kwargs):
            raise RuntimeError("scorer blew up")

        monkeypatch.setattr(server.engine, "search", explode)
        with pytest.raises(RuntimeError):
            server.run_query("apple", max_docs=2)
        assert (server.costs.failed_queries, server.costs.errored_queries) == (1, 1)
        assert server.costs.unsuccessful_queries == 2
        assert server.costs.as_dict()["unsuccessful_queries"] == 2

    def test_invalid_max_docs_not_metered(self, tiny_corpus):
        # Client-side misuse is rejected before the query is attempted.
        server = DatabaseServer(tiny_corpus)
        with pytest.raises(ValueError):
            server.run_query("apple", max_docs=0)
        assert server.costs.queries_run == 0
        assert server.costs.errored_queries == 0


class TestGroundTruth:
    def test_actual_language_model_is_index_export(self, tiny_server):
        model = tiny_server.actual_language_model()
        assert len(model) == tiny_server.index.vocabulary_size
        assert model.documents_seen == tiny_server.num_documents

    def test_num_documents(self, tiny_server):
        assert tiny_server.num_documents == 6

    def test_name_defaults_to_corpus(self, tiny_server):
        assert tiny_server.name == "tiny"

    def test_explicit_name(self, tiny_corpus):
        assert DatabaseServer(tiny_corpus, name="alias").name == "alias"
