"""Unit tests for repro.utils.rand, repro.utils.stats, and repro.utils.zipf."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rand import derive_rng, derive_seed, ensure_rng
from repro.utils.stats import latency_summary, percentile
from repro.utils.zipf import (
    fit_heaps,
    fit_zipf,
    heaps_vocabulary_size,
    zipf_cdf,
    zipf_probabilities,
)


class TestEnsureRng:
    def test_int_seed_reproducible(self):
        assert ensure_rng(42).integers(1000) == ensure_rng(42).integers(1000)

    def test_generator_passes_through(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")  # type: ignore[arg-type]


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_labels_matter(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_parent_seed_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_integer_labels_supported(self):
        assert derive_seed(1, 5) == derive_seed(1, "5")

    def test_derive_rng_streams_independent(self):
        a = derive_rng(7, "x").random(5)
        b = derive_rng(7, "y").random(5)
        assert not np.allclose(a, b)


class TestPercentile:
    def test_matches_numpy_convention(self):
        rng = np.random.default_rng(3)
        samples = rng.random(137).tolist()
        for q in (0.0, 25.0, 50.0, 95.0, 99.0, 100.0):
            assert percentile(samples, q) == pytest.approx(
                float(np.percentile(samples, q))
            )

    def test_single_sample(self):
        assert percentile([0.7], 99.0) == 0.7

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="zero samples"):
            percentile([], 50.0)

    @pytest.mark.parametrize("q", [-1.0, 100.5])
    def test_out_of_range_rejected(self, q):
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([1.0], q)


class TestLatencySummary:
    def test_keys_and_ordering(self):
        summary = latency_summary([0.02, 0.01, 0.05, 0.03])
        assert set(summary) == {"count", "mean", "min", "max", "p50", "p95", "p99"}
        assert summary["count"] == 4
        assert summary["min"] <= summary["p50"] <= summary["p95"] <= summary["p99"]
        assert summary["p99"] <= summary["max"]
        assert summary["mean"] == pytest.approx(0.0275)

    def test_empty_is_zeroed_not_error(self):
        summary = latency_summary([])
        assert summary["count"] == 0
        assert all(value == 0.0 for key, value in summary.items() if key != "count")


class TestZipfProbabilities:
    def test_sums_to_one(self):
        assert zipf_probabilities(100).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        probs = zipf_probabilities(50, exponent=1.0)
        assert np.all(np.diff(probs) <= 0)

    def test_exponent_zero_is_uniform(self):
        probs = zipf_probabilities(10, exponent=0.0)
        assert np.allclose(probs, 0.1)

    def test_classic_ratio(self):
        # Under s=1, rank 1 is twice as likely as rank 2.
        probs = zipf_probabilities(1000, exponent=1.0)
        assert probs[0] / probs[1] == pytest.approx(2.0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            zipf_probabilities(10, exponent=-1.0)

    def test_cdf_last_is_one(self):
        assert zipf_cdf(20)[-1] == pytest.approx(1.0)


class TestHeaps:
    def test_prediction_monotone(self):
        sizes = [heaps_vocabulary_size(n) for n in (0, 100, 10_000, 1_000_000)]
        assert sizes == sorted(sizes)
        assert sizes[0] == 0

    def test_negative_tokens_rejected(self):
        with pytest.raises(ValueError):
            heaps_vocabulary_size(-1)

    def test_fit_recovers_parameters(self):
        tokens = np.logspace(2, 6, 20)
        vocab = 25.0 * tokens**0.55
        k, beta = fit_heaps(tokens, vocab)
        assert k == pytest.approx(25.0, rel=1e-6)
        assert beta == pytest.approx(0.55, rel=1e-6)

    def test_fit_shape_mismatch(self):
        with pytest.raises(ValueError):
            fit_heaps(np.arange(5), np.arange(4))


class TestFitZipf:
    def test_recovers_exponent_from_exact_power_law(self):
        ranks = np.arange(1, 2000)
        frequencies = 1e6 * ranks**-1.1
        exponent, r_squared = fit_zipf(frequencies)
        assert exponent == pytest.approx(1.1, abs=0.01)
        assert r_squared > 0.999

    def test_skip_top_ignores_outliers(self):
        ranks = np.arange(1, 1000)
        frequencies = 1e6 * ranks**-1.0
        frequencies[0] *= 100  # distorted head
        exponent, _ = fit_zipf(frequencies, skip_top=5)
        assert exponent == pytest.approx(1.0, abs=0.02)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_zipf(np.array([5.0, 1.0]))
