"""Unit tests for the sharded model store (repro.store.sharded).

The contract under test: a sharded store behaves exactly like the flat
store it is built from (same models, same epochs, bit-identical files)
while adding shard-level selectivity — and a crash at *any* write
during a sharded save leaves every shard's manifest and referenced
models intact, extending the flat store's kill-anywhere guarantee.
"""

from __future__ import annotations

import threading

import pytest

import repro.store.model_store as model_store_module
import repro.store.sharded as sharded_module
from repro.lm import LanguageModel, dumps_language_model
from repro.obs import TraceRecorder
from repro.store import (
    FLEET_MANIFEST_NAME,
    ModelStorage,
    ModelStore,
    ShardedModelStore,
    StoreIntegrityError,
    open_store,
    shard_of,
)


def build_model(name: str, docs: list[list[str]]) -> LanguageModel:
    model = LanguageModel(name=name)
    for tokens in docs:
        model.add_document(tokens)
    return model


def build_fleet(count: int, tag: str = "v1") -> dict[str, LanguageModel]:
    return {
        f"db{i:03d}": build_model(f"db{i:03d}", [[tag, "term", f"t{i}", f"t{i}"]])
        for i in range(count)
    }


def dump_all(store) -> dict[str, str]:
    return {name: dumps_language_model(model) for name, model in store.iter_models()}


class TestShardOf:
    def test_stable_and_in_range(self):
        for name in ["wsj88", "ap89", "cacm", "db with spaces", "ünïcode"]:
            first = shard_of(name, 16)
            assert 0 <= first < 16
            assert shard_of(name, 16) == first  # deterministic

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            shard_of("x", 0)

    def test_spreads_names(self):
        # 64 names over 8 shards should not all collapse to one bucket.
        buckets = {shard_of(f"db{i:03d}", 8) for i in range(64)}
        assert len(buckets) > 4


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        fleet = build_fleet(12)
        store = ShardedModelStore(tmp_path / "store", num_shards=4)
        manifest = store.save(fleet, model_epoch=3)
        assert manifest.model_epoch == 3
        assert manifest.total_models == 12
        assert store.model_epoch() == 3
        assert store.model_names() == sorted(fleet)
        loaded = store.load()
        for name in fleet:
            assert dumps_language_model(loaded[name]) == dumps_language_model(fleet[name])

    def test_selective_load_touches_one_shard(self, tmp_path):
        fleet = build_fleet(12)
        store = ShardedModelStore(tmp_path / "store", num_shards=4)
        store.save(fleet)
        model = store.load_model("db003")
        assert dumps_language_model(model) == dumps_language_model(fleet["db003"])
        with pytest.raises(KeyError):
            store.load_model("not-there")

    def test_iter_models_streams_sorted(self, tmp_path):
        fleet = build_fleet(10)
        store = ShardedModelStore(tmp_path / "store", num_shards=4)
        store.save(fleet)
        names = [name for name, _ in store.iter_models()]
        assert sorted(names) == sorted(fleet)

    def test_empty_save_rejected(self, tmp_path):
        store = ShardedModelStore(tmp_path / "store", num_shards=4)
        with pytest.raises(ValueError):
            store.save({})
        with pytest.raises(ValueError):
            store.update({})

    def test_full_save_prunes_departed_shards(self, tmp_path):
        store = ShardedModelStore(tmp_path / "store", num_shards=8)
        store.save(build_fleet(20), model_epoch=1)
        # Save a much smaller fleet: shards the new content does not
        # occupy disappear and the fleet manifest never mentions them.
        small = {"db000": build_model("db000", [["only", "one"]])}
        store.save(small, model_epoch=2)
        assert store.model_names() == ["db000"]
        assert store.verify() == []
        listed = set(store.shard_ids())
        on_disk = {p.name for p in (store.root / "shards").iterdir() if p.is_dir()}
        assert on_disk == listed


class TestUpdate:
    def test_update_rewrites_only_affected_shards(self, tmp_path):
        fleet = build_fleet(16)
        store = ShardedModelStore(tmp_path / "store", num_shards=4)
        store.save(fleet, model_epoch=1)
        before = store.shard_epochs()

        fresh = {"db005": build_model("db005", [["fresh", "content"]])}
        store.update(fresh)

        after = store.shard_epochs()
        touched = store.shard_id(shard_of("db005", store.num_shards))
        assert after[touched] == 2  # default: one past the fleet epoch
        for shard_id, epoch in before.items():
            if shard_id != touched:
                assert after[shard_id] == epoch  # untouched shards did not move
        # The untouched names are still all present.
        assert store.model_names() == sorted(fleet)
        assert dumps_language_model(store.load_model("db005")) == dumps_language_model(
            fresh["db005"]
        )
        assert store.model_epoch() == 2
        assert store.verify() == []

    def test_update_can_add_new_names(self, tmp_path):
        store = ShardedModelStore(tmp_path / "store", num_shards=4)
        store.save(build_fleet(4), model_epoch=1)
        store.update({"newdb": build_model("newdb", [["brand", "new"]])}, model_epoch=5)
        assert "newdb" in store.model_names()
        assert store.model_epoch() == 5


class TestShardCount:
    def test_shard_count_read_back_from_disk(self, tmp_path):
        ShardedModelStore(tmp_path / "store", num_shards=4).save(build_fleet(6))
        reopened = ShardedModelStore(tmp_path / "store")
        assert reopened.num_shards == 4

    def test_mismatched_shard_count_rejected(self, tmp_path):
        ShardedModelStore(tmp_path / "store", num_shards=4).save(build_fleet(6))
        with pytest.raises(StoreIntegrityError, match="fixed at creation"):
            _ = ShardedModelStore(tmp_path / "store", num_shards=8).num_shards

    def test_invalid_construction(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedModelStore(tmp_path, num_shards=0)
        with pytest.raises(ValueError):
            ShardedModelStore(tmp_path, save_workers=0)


class TestProtocolAndOpen:
    def test_both_stores_satisfy_the_protocol(self, tmp_path):
        assert isinstance(ModelStore(tmp_path / "flat"), ModelStorage)
        assert isinstance(ShardedModelStore(tmp_path / "sharded"), ModelStorage)

    def test_open_store_autodetects(self, tmp_path):
        fleet = build_fleet(4)
        ModelStore(tmp_path / "flat").save(fleet)
        ShardedModelStore(tmp_path / "sharded", num_shards=2).save(fleet)
        assert isinstance(open_store(tmp_path / "flat"), ModelStore)
        assert isinstance(open_store(tmp_path / "sharded"), ShardedModelStore)
        # A directory that does not exist yet defaults to the flat store.
        assert isinstance(open_store(tmp_path / "new"), ModelStore)

    def test_flat_store_protocol_surface(self, tmp_path):
        store = ModelStore(tmp_path / "flat")
        fleet = build_fleet(3)
        store.save(fleet, model_epoch=2)
        assert store.model_names() == sorted(fleet)
        assert store.model_epoch() == 2
        assert [name for name, _ in store.iter_models()] == sorted(fleet)


class TestMigration:
    def test_migration_is_bit_identical(self, tmp_path):
        fleet = build_fleet(10)
        flat = ModelStore(tmp_path / "flat")
        flat.save(fleet, model_epoch=7)
        flat_bytes = {
            entry.file.split("/")[-1]: (flat.root / entry.file).read_bytes()
            for entry in flat.read_manifest().models.values()
        }

        sharded = ShardedModelStore.migrate(flat, tmp_path / "sharded", num_shards=4)
        assert sharded.model_epoch() == 7  # epoch carries over
        assert sharded.model_names() == sorted(fleet)
        assert sharded.verify() == []
        assert dump_all(sharded) == dump_all(flat)
        # The canonical serialization makes migrated files byte-for-byte
        # identical to the flat originals.
        sharded_bytes = {}
        for shard_id in sharded.shard_ids():
            shard = sharded.shard(shard_id)
            for entry in shard.read_manifest().models.values():
                sharded_bytes[entry.file.split("/")[-1]] = (shard.root / entry.file).read_bytes()
        assert sharded_bytes == flat_bytes

    def test_migration_refuses_existing_target(self, tmp_path):
        flat = ModelStore(tmp_path / "flat")
        flat.save(build_fleet(2))
        ShardedModelStore(tmp_path / "sharded", num_shards=2).save(build_fleet(2))
        with pytest.raises(StoreIntegrityError, match="existing store"):
            ShardedModelStore.migrate(flat, tmp_path / "sharded")

    def test_migration_leaves_source_untouched(self, tmp_path):
        flat = ModelStore(tmp_path / "flat")
        flat.save(build_fleet(4), model_epoch=2)
        before = dump_all(flat)
        ShardedModelStore.migrate(flat, tmp_path / "sharded", num_shards=2)
        assert dump_all(flat) == before
        assert flat.model_epoch() == 2


class TestCrashDuringShardedSave:
    """Kill-anywhere injection: every shard must stay internally intact."""

    def _crash_at(self, monkeypatch, crash_at_write: int):
        """Crash the ``crash_at_write``-th atomic write, wherever it lands.

        Patches both the shard-level writer (model files + shard
        manifests) and the fleet-level writer (``fleet.json``) with one
        shared, lock-guarded counter — shard saves run on a thread
        pool, so the counter must be race-free for the kill point to
        be exact.
        """
        lock = threading.Lock()
        calls = {"n": 0}
        real_write = model_store_module.atomic_write_text

        def crashing_write(path, text):
            with lock:
                calls["n"] += 1
                # A killed process writes nothing further — fail this
                # write *and every later one* (queued shard saves on
                # the pool would otherwise keep landing writes).
                if calls["n"] >= crash_at_write:
                    raise OSError("simulated crash mid-save")
            real_write(path, text)

        monkeypatch.setattr(model_store_module, "atomic_write_text", crashing_write)
        monkeypatch.setattr(sharded_module, "atomic_write_text", crashing_write)
        return calls

    # A full save of db000..db005 over 3 shards makes exactly 10
    # writes: 6 model files, 3 shard manifests, 1 fleet manifest.
    @pytest.mark.parametrize("crash_at_write", range(1, 11))
    def test_kill_anywhere_leaves_every_shard_intact(
        self, tmp_path, monkeypatch, crash_at_write
    ):
        fleet = build_fleet(6)
        store = ShardedModelStore(tmp_path / "store", num_shards=3, save_workers=1)
        store.save(fleet, model_epoch=1)
        before = dump_all(store)

        updated = build_fleet(6, tag="v2")
        self._crash_at(monkeypatch, crash_at_write)
        with pytest.raises(OSError, match="simulated crash"):
            store.save(updated, model_epoch=2)
        monkeypatch.undo()

        # Every shard's manifest parses and every referenced model
        # passes its checksum — the acceptance criterion.  A shard is
        # either wholly old or wholly new (epoch 1 or 2), never torn.
        survivor = ShardedModelStore(tmp_path / "store")
        assert survivor.verify() == []
        for shard_id, epoch in survivor.shard_epochs().items():
            assert epoch in (1, 2)
        # Each model is readable and matches one of the two generations.
        for name, text in dump_all(survivor).items():
            assert text in (before[name], dumps_language_model(updated[name]))

    def test_crash_mid_save_then_retry_converges(self, tmp_path, monkeypatch):
        fleet = build_fleet(6)
        store = ShardedModelStore(tmp_path / "store", num_shards=3, save_workers=1)
        store.save(fleet, model_epoch=1)
        updated = build_fleet(6, tag="v2")

        self._crash_at(monkeypatch, 5)
        with pytest.raises(OSError):
            store.save(updated, model_epoch=2)
        monkeypatch.undo()

        # A retried save completes and the store is exactly the new set.
        store.save(updated, model_epoch=2)
        assert store.verify() == []
        assert store.orphans() == []
        assert store.model_epoch() == 2
        assert dump_all(store) == {
            name: dumps_language_model(model) for name, model in updated.items()
        }


class TestInspection:
    def test_orphans_and_prune_per_shard(self, tmp_path):
        store = ShardedModelStore(tmp_path / "store", num_shards=2)
        store.save(build_fleet(4))
        shard_id = store.shard_ids()[0]
        stray = store.root / "shards" / shard_id / "models" / "stray.lm"
        stray.write_text("junk")
        assert store.orphans() == [f"shards/{shard_id}/models/stray.lm"]
        assert store.verify() == []  # orphans are harmless
        removed = store.prune_orphans()
        assert removed == [f"shards/{shard_id}/models/stray.lm"]
        assert not stray.exists()
        assert store.orphans() == []

    def test_misplaced_model_detected(self, tmp_path):
        fleet = build_fleet(6)
        store = ShardedModelStore(tmp_path / "store", num_shards=3)
        store.save(fleet)
        # Force a model into the wrong shard: save it into some shard
        # it does not hash to.
        name = "db000"
        home = store.shard_id(shard_of(name, store.num_shards))
        wrong = next(s for s in store.shard_ids() if s != home)
        wrong_shard = store.shard(wrong)
        merged = wrong_shard.load()
        merged[name] = fleet[name]
        wrong_shard.save(merged)
        problems = store.verify()
        assert any("misplaced" in p for p in problems)

    def test_corrupt_shard_model_reported_with_shard_prefix(self, tmp_path):
        store = ShardedModelStore(tmp_path / "store", num_shards=2)
        store.save(build_fleet(4))
        shard_id = store.shard_ids()[0]
        shard = store.shard(shard_id)
        entry = next(iter(shard.read_manifest().models.values()))
        (shard.root / entry.file).write_text("corrupted")
        problems = store.verify()
        assert problems and all(p.startswith(f"shard {shard_id}:") for p in problems)

    def test_missing_fleet_manifest(self, tmp_path):
        store = ShardedModelStore(tmp_path / "nowhere")
        assert not store.exists()
        assert store.verify() != []
        with pytest.raises(FileNotFoundError):
            store.read_fleet_manifest()

    def test_bad_fleet_schema_rejected(self, tmp_path):
        store = ShardedModelStore(tmp_path / "store", num_shards=2)
        store.save(build_fleet(2))
        path = store.fleet_manifest_path
        data = path.read_text().replace("repro-fleet-store/1", "repro-fleet-store/99")
        path.write_text(data)
        with pytest.raises(StoreIntegrityError, match="unsupported fleet schema"):
            store.read_fleet_manifest()

    def test_recorder_sees_fleet_spans(self, tmp_path):
        recorder = TraceRecorder()
        store = ShardedModelStore(tmp_path / "store", num_shards=2, recorder=recorder)
        store.save(build_fleet(4))
        names = [span.name for span in recorder.spans]
        assert "fleet_save" in names
        assert recorder.metrics.counter("store.shards_written").value >= 1


def test_fleet_manifest_file_name_constant(tmp_path):
    store = ShardedModelStore(tmp_path / "store", num_shards=2)
    store.save(build_fleet(2))
    assert (store.root / FLEET_MANIFEST_NAME).is_file()
