"""Unit tests for repro.lm.model."""

from __future__ import annotations

import pytest

from repro.lm import LanguageModel
from repro.text import Analyzer


@pytest.fixture
def model() -> LanguageModel:
    built = LanguageModel(name="test")
    built.add_document(["apple", "apple", "banana"])
    built.add_document(["apple", "cherry"])
    built.add_document(["banana", "banana", "banana", "date"])
    return built


class TestIncrementalConstruction:
    def test_df_counts_documents(self, model):
        assert model.df("apple") == 2
        assert model.df("banana") == 2
        assert model.df("date") == 1

    def test_ctf_counts_occurrences(self, model):
        assert model.ctf("apple") == 3
        assert model.ctf("banana") == 4

    def test_unknown_term_zero(self, model):
        assert model.df("zzz") == 0
        assert model.ctf("zzz") == 0
        assert model.avg_tf("zzz") == 0.0

    def test_documents_and_tokens_seen(self, model):
        assert model.documents_seen == 3
        assert model.tokens_seen == 9

    def test_avg_tf(self, model):
        assert model.avg_tf("banana") == pytest.approx(2.0)
        assert model.avg_tf("apple") == pytest.approx(1.5)

    def test_len_and_contains_and_iter(self, model):
        assert len(model) == 4
        assert "apple" in model
        assert set(model) == {"apple", "banana", "cherry", "date"}

    def test_total_ctf(self, model):
        assert model.total_ctf == 9

    def test_stats(self, model):
        stats = model.stats("banana")
        assert (stats.df, stats.ctf, stats.avg_tf) == (2, 4, 2.0)


class TestAddTermValidation:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LanguageModel().add_term("x", df=-1, ctf=2)

    def test_df_exceeding_ctf_rejected(self):
        with pytest.raises(ValueError):
            LanguageModel().add_term("x", df=3, ctf=2)

    def test_accumulates(self):
        model = LanguageModel()
        model.add_term("x", df=1, ctf=2)
        model.add_term("x", df=2, ctf=5)
        assert model.df("x") == 3
        assert model.ctf("x") == 7


class TestMergeAndCopy:
    def test_merge_adds_statistics(self, model):
        other = LanguageModel(name="other")
        other.add_document(["apple", "elderberry"])
        merged = model.merge(other)
        assert merged.df("apple") == 3
        assert merged.df("elderberry") == 1
        assert merged.documents_seen == 4
        assert merged.tokens_seen == 11

    def test_merge_leaves_originals_untouched(self, model):
        other = LanguageModel(name="other")
        other.add_document(["apple"])
        model.merge(other)
        assert model.df("apple") == 2

    def test_copy_is_deep(self, model):
        duplicate = model.copy()
        duplicate.add_document(["fig"])
        assert "fig" not in model
        assert duplicate.documents_seen == model.documents_seen + 1

    def test_copy_rename(self, model):
        assert model.copy(name="snap").name == "snap"


class TestProjection:
    def test_projection_stems_and_stops(self):
        model = LanguageModel()
        model.add_document(["the", "running", "dogs"])
        projected = model.project(Analyzer.inquery_style())
        assert "the" not in projected
        assert "run" in projected
        assert "dog" in projected

    def test_projection_conflates_variants(self):
        model = LanguageModel()
        model.add_document(["report"])
        model.add_document(["reports", "reporting"])
        projected = model.project(Analyzer.inquery_style())
        assert projected.ctf("report") == 3
        # df conflation sums (documented approximation).
        assert projected.df("report") == 3

    def test_projection_preserves_counters(self, model):
        projected = model.project(Analyzer.inquery_style())
        assert projected.documents_seen == model.documents_seen
        assert projected.tokens_seen == model.tokens_seen


class TestRestriction:
    def test_restricted_to(self, model):
        restricted = model.restricted_to(["apple", "zzz"])
        assert set(restricted) == {"apple"}
        assert restricted.df("apple") == model.df("apple")


class TestTopTerms:
    def test_by_ctf(self, model):
        assert [s.term for s in model.top_terms(2, key="ctf")] == ["banana", "apple"]

    def test_by_df_ties_alphabetical(self, model):
        top = model.top_terms(4, key="df")
        assert [s.term for s in top] == ["apple", "banana", "cherry", "date"]

    def test_by_avg_tf(self, model):
        assert model.top_terms(1, key="avg_tf")[0].term == "banana"

    def test_invalid_key(self, model):
        with pytest.raises(ValueError):
            model.top_terms(3, key="idf")

    def test_k_larger_than_vocabulary(self, model):
        assert len(model.top_terms(100)) == 4

    def test_avg_tf_with_zero_df_term(self, model):
        # add_term accepts df=0 (e.g. a term loaded from a serialized
        # model that only recorded collection frequency); ranking by
        # avg_tf must treat it as 0.0, not raise ZeroDivisionError.
        model.add_term("ghost", df=0, ctf=5)
        ranked = model.top_terms(100, key="avg_tf")
        assert ranked[0].term == "banana"
        assert ranked[-1].term == "ghost"  # avg_tf 0.0 ranks below any real term

    def test_avg_tf_accessor_with_zero_df_term(self, model):
        model.add_term("ghost", df=0, ctf=5)
        assert model.avg_tf("ghost") == 0.0
        assert model.stats("ghost").avg_tf == 0.0


class TestCachedTotalCtf:
    """total_ctf is a running total every mutator must maintain."""

    def _check(self, model: LanguageModel) -> None:
        assert model.total_ctf == sum(model.ctf(term) for term in model)

    def test_after_add_term_and_add_document(self, model):
        self._check(model)
        model.add_term("elderberry", df=2, ctf=5)
        model.add_term("apple", df=1, ctf=1)  # accumulate onto existing
        self._check(model)
        model.add_document(["fig", "fig", "apple"])
        self._check(model)

    def test_merge_and_copy_preserve_total(self, model):
        other = LanguageModel(name="other")
        other.add_document(["apple", "grape"])
        merged = model.merge(other)
        self._check(merged)
        assert merged.total_ctf == model.total_ctf + other.total_ctf
        self._check(model.copy())
        assert model.copy().total_ctf == model.total_ctf

    def test_project_and_restrict_recompute_totals(self, model):
        projected = model.project(Analyzer.inquery_style())
        self._check(projected)
        restricted = model.restricted_to(["apple", "banana"])
        self._check(restricted)
        assert restricted.total_ctf == model.ctf("apple") + model.ctf("banana")

    def test_empty_model(self):
        assert LanguageModel().total_ctf == 0


class TestTopTermsSelection:
    """Heap-based top_terms must match a full deterministic sort."""

    def _reference(self, model: LanguageModel, k: int, key: str):
        score = {
            "df": model.df,
            "ctf": model.ctf,
            "avg_tf": model.avg_tf,
        }[key]
        ranked = sorted(model, key=lambda term: (-score(term), term))
        return ranked[:k]

    def test_matches_sorted_reference_all_keys(self, model):
        for key in ("df", "ctf", "avg_tf"):
            for k in (1, 2, 3, 4, 100):
                assert [
                    s.term for s in model.top_terms(k, key=key)
                ] == self._reference(model, k, key)

    def test_ties_break_alphabetically(self):
        model = LanguageModel()
        for term in ("pear", "apple", "mango"):
            model.add_term(term, df=1, ctf=3)
        assert [s.term for s in model.top_terms(2, key="ctf")] == ["apple", "mango"]

    def test_nonpositive_k_empty(self, model):
        assert model.top_terms(0) == []
        assert model.top_terms(-5) == []
