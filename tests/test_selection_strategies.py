"""Unit tests for repro.sampling.selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lm import LanguageModel
from repro.sampling import (
    FrequencyFromLearned,
    ListBootstrap,
    RandomFromLearned,
    RandomFromOther,
    is_eligible_query_term,
)


@pytest.fixture
def learned() -> LanguageModel:
    model = LanguageModel()
    model.add_document(["apple", "apple", "apple", "banana"])      # apple ctf 3
    model.add_document(["apple", "banana", "cherry"])
    model.add_document(["banana", "dragonfruit"])                  # banana df 3
    return model


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


class TestEligibility:
    @pytest.mark.parametrize("term", ["apple", "win32", "abc"])
    def test_eligible(self, term):
        assert is_eligible_query_term(term)

    @pytest.mark.parametrize("term", ["ab", "12", "1988", "", "two words", "a-b"])
    def test_ineligible(self, term):
        # The paper: "could not be a number and was required to be 3 or
        # more characters long".
        assert not is_eligible_query_term(term)

    def test_custom_min_length(self):
        assert is_eligible_query_term("ab", min_length=2)


class TestRandomFromLearned:
    def test_selects_from_vocabulary(self, learned):
        term = RandomFromLearned().select(learned, set(), rng())
        assert term in learned.vocabulary

    def test_never_reuses(self, learned):
        strategy = RandomFromLearned()
        used: set[str] = set()
        picks = []
        while True:
            term = strategy.select(learned, used, rng(len(picks)))
            if term is None:
                break
            assert term not in used
            used.add(term)
            picks.append(term)
        assert sorted(picks) == sorted(learned.vocabulary)

    def test_exhausted_returns_none(self, learned):
        used = set(learned.vocabulary)
        assert RandomFromLearned().select(learned, used, rng()) is None

    def test_empty_model_returns_none(self):
        assert RandomFromLearned().select(LanguageModel(), set(), rng()) is None

    def test_ineligible_terms_skipped(self):
        model = LanguageModel()
        model.add_document(["ab", "12", "999"])
        assert RandomFromLearned().select(model, set(), rng()) is None

    def test_deterministic_given_rng(self, learned):
        first = RandomFromLearned().select(learned, set(), rng(42))
        second = RandomFromLearned().select(learned, set(), rng(42))
        assert first == second


class TestFrequencyFromLearned:
    def test_df_picks_highest_df(self, learned):
        assert FrequencyFromLearned("df").select(learned, set(), rng()) == "banana"

    def test_ctf_picks_highest_ctf(self, learned):
        assert FrequencyFromLearned("ctf").select(learned, set(), rng()) == "apple"

    def test_avg_tf_picks_highest_ratio(self, learned):
        # apple: 4/2 = 2.0; banana: 3/3 = 1.0
        assert FrequencyFromLearned("avg_tf").select(learned, set(), rng()) == "apple"

    def test_used_terms_skipped(self, learned):
        assert (
            FrequencyFromLearned("df").select(learned, {"banana"}, rng()) == "apple"
        )

    def test_tie_breaks_alphabetically(self):
        model = LanguageModel()
        model.add_document(["zebra", "aardvark"])
        assert FrequencyFromLearned("df").select(model, set(), rng()) == "aardvark"

    def test_invalid_metric(self):
        with pytest.raises(ValueError):
            FrequencyFromLearned("idf")

    def test_name(self):
        assert FrequencyFromLearned("ctf").name == "ctf_llm"


class TestRandomFromOther:
    def test_draws_from_other_model(self, learned):
        other = LanguageModel()
        other.add_document(["xylophone", "yacht"])
        strategy = RandomFromOther(other)
        term = strategy.select(learned, set(), rng())
        assert term in {"xylophone", "yacht"}

    def test_ignores_learned_model(self):
        other = LanguageModel()
        other.add_document(["xylophone"])
        assert RandomFromOther(other).select(LanguageModel(), set(), rng()) == "xylophone"

    def test_exhaustion(self):
        other = LanguageModel()
        other.add_document(["xylophone"])
        assert RandomFromOther(other).select(LanguageModel(), {"xylophone"}, rng()) is None


class TestListBootstrap:
    def test_in_order(self):
        bootstrap = ListBootstrap(["first", "second"])
        assert bootstrap.select(LanguageModel(), set(), rng()) == "first"
        assert bootstrap.select(LanguageModel(), {"first"}, rng()) == "second"

    def test_filters_ineligible(self):
        bootstrap = ListBootstrap(["ab", "12", "valid"])
        assert bootstrap.terms == ["valid"]

    def test_all_ineligible_rejected(self):
        with pytest.raises(ValueError):
            ListBootstrap(["ab", "12"])

    def test_exhaustion(self):
        bootstrap = ListBootstrap(["only"])
        assert bootstrap.select(LanguageModel(), {"only"}, rng()) is None
