"""Unit tests for repro.lm.shrinkage."""

from __future__ import annotations

import pytest

from repro.lm import LanguageModel, shrink, shrink_all


def make_model(term_ctf: dict[str, int], docs: int, name: str = "m") -> LanguageModel:
    model = LanguageModel(name=name)
    for term, ctf in term_ctf.items():
        model.add_term(term, df=max(1, ctf // 2), ctf=ctf)
    model.documents_seen = docs
    model.tokens_seen = sum(term_ctf.values())
    return model


@pytest.fixture
def sample() -> LanguageModel:
    return make_model({"alpha": 40, "beta": 8, "gamma": 2}, docs=50, name="sample")


@pytest.fixture
def background() -> LanguageModel:
    return make_model(
        {"alpha": 400, "beta": 300, "delta": 200, "epsilon": 100}, docs=1000, name="bg"
    )


class TestShrink:
    def test_gains_background_vocabulary(self, sample, background):
        shrunk = shrink(sample, background, weight=0.8)
        assert "delta" in shrunk  # unseen in the sample, known to background
        assert shrunk.ctf("delta") > 0

    def test_sample_terms_dominant_at_high_weight(self, sample, background):
        shrunk = shrink(sample, background, weight=0.9)
        # alpha stays the top term; its count stays near the sample's.
        assert shrunk.top_terms(1, key="ctf")[0].term == "alpha"
        assert shrunk.ctf("alpha") >= 0.8 * sample.ctf("alpha")

    def test_weight_one_is_identity_on_counts(self, sample, background):
        shrunk = shrink(sample, background, weight=1.0)
        for term in sample:
            assert shrunk.ctf(term) == sample.ctf(term)
        # Background-only terms get zero mass at weight 1 → dropped.
        assert "delta" not in shrunk

    def test_token_mass_preserved_approximately(self, sample, background):
        shrunk = shrink(sample, background, weight=0.7)
        assert shrunk.total_ctf == pytest.approx(sample.total_ctf, rel=0.2)

    def test_magnitudes_keep_sample_scale(self, sample, background):
        shrunk = shrink(sample, background, weight=0.8)
        assert shrunk.documents_seen == sample.documents_seen
        assert shrunk.tokens_seen == sample.tokens_seen

    def test_df_never_exceeds_ctf(self, sample, background):
        shrunk = shrink(sample, background, weight=0.5)
        for stats in shrunk.items():
            assert 1 <= stats.df <= stats.ctf

    def test_invalid_weight(self, sample, background):
        for weight in (0.0, -0.1, 1.1):
            with pytest.raises(ValueError):
                shrink(sample, background, weight=weight)

    def test_empty_models_rejected(self, sample):
        with pytest.raises(ValueError):
            shrink(LanguageModel(), sample)
        with pytest.raises(ValueError):
            shrink(sample, LanguageModel())


class TestShrinkAll:
    def test_every_model_shrunk_toward_union(self):
        models = {
            "a": make_model({"alpha": 20, "shared": 10}, docs=30, name="a"),
            "b": make_model({"beta": 20, "shared": 10}, docs=30, name="b"),
            "c": make_model({"gamma": 20, "shared": 10}, docs=30, name="c"),
        }
        shrunk = shrink_all(models, weight=0.7)
        assert set(shrunk) == {"a", "b", "c"}
        # a's shrunk model now knows beta and gamma (from the union).
        assert "beta" in shrunk["a"]
        assert "gamma" in shrunk["a"]
        # ...but its own vocabulary still dominates.
        assert shrunk["a"].ctf("alpha") > shrunk["a"].ctf("beta")

    def test_single_model_copied(self):
        models = {"only": make_model({"alpha": 5}, docs=10)}
        shrunk = shrink_all(models)
        assert shrunk["only"] is not models["only"]
        assert shrunk["only"].ctf("alpha") == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            shrink_all({})
