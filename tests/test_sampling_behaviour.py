"""Behavioural tests of sampling dynamics on synthetic databases.

These test the *scientific* behaviour the paper depends on, beyond the
mechanical unit tests: bias of retrieved samples, metric convergence,
strategy interactions, and the relationship between observable and
hidden quality signals.
"""

from __future__ import annotations

import pytest

from repro.index import DatabaseServer
from repro.lm import ctf_ratio, percentage_learned, rdiff
from repro.sampling import (
    FrequencyFromLearned,
    MaxDocuments,
    QueryBasedSampler,
    RandomFromOther,
    SamplerConfig,
)
from repro.synth import wsj88_like


@pytest.fixture(scope="module")
def server() -> DatabaseServer:
    return DatabaseServer(wsj88_like().build(seed=71, scale=0.1))


@pytest.fixture(scope="module")
def actual(server):
    return server.actual_language_model()


def run_with(server, seed=0, max_docs=200, **kwargs):
    sampler = QueryBasedSampler(
        server,
        bootstrap=RandomFromOther(server.actual_language_model()),
        stopping=MaxDocuments(max_docs),
        seed=seed,
        **kwargs,
    )
    return sampler.run()


class TestConvergenceBehaviour:
    def test_ctf_ratio_grows_along_snapshots(self, server, actual):
        run = run_with(server, seed=1)
        ratios = [
            ctf_ratio(s.model.project(server.index.analyzer), actual)
            for s in run.snapshots
        ]
        assert all(b >= a for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] > 0.6

    def test_rdiff_falls_with_more_documents(self, server):
        run = run_with(server, seed=2, max_docs=300)
        values = [
            rdiff(a.model, b.model)
            for a, b in zip(run.snapshots, run.snapshots[1:])
        ]
        assert values[-1] < values[0]

    def test_marginal_value_of_documents_decreases(self, server, actual):
        # The paper's leveling-off: the first 100 documents buy more ctf
        # coverage than the second 100.
        run = run_with(server, seed=3, max_docs=200)
        at_100 = ctf_ratio(
            run.snapshot_at(100).model.project(server.index.analyzer), actual
        )
        at_200 = ctf_ratio(
            run.snapshot_at(200).model.project(server.index.analyzer), actual
        )
        assert at_100 > (at_200 - at_100)


class TestSampleBias:
    def test_sample_df_overestimates_query_terms(self, server, actual):
        # Retrieval bias: terms used as queries appear in *every*
        # retrieved document for that query, inflating their sample
        # df relative to a random sample.
        run = run_with(server, seed=4)
        sample_fraction = run.documents_examined / server.num_documents
        inflated = 0
        checked = 0
        for record in run.queries:
            if record.failed or record.new_documents == 0:
                continue
            term = record.term
            true_df = actual.df(server.index.analyzer.project_term(term) or term)
            if true_df == 0:
                continue
            expected_in_sample = true_df * sample_fraction
            if run.model.df(term) > expected_in_sample:
                inflated += 1
            checked += 1
        assert checked > 10
        # More than half of all query terms are overrepresented in the
        # sample (at this small corpus scale the bias is diluted by the
        # large sample fraction; at paper scale it is far stronger).
        assert inflated / checked > 0.55

    def test_learned_vocabulary_skews_frequent(self, server, actual):
        # The learned vocabulary covers a far greater share of term
        # *occurrences* than of distinct terms (paper's Figure 1a vs 1b).
        run = run_with(server, seed=5, max_docs=100)
        projected = run.model.project(server.index.analyzer)
        assert ctf_ratio(projected, actual) > 1.5 * percentage_learned(projected, actual)


class TestStrategyInteractions:
    def test_frequency_strategy_queries_never_fail(self, server):
        # High-frequency learned terms (beyond the first bootstrap
        # query) always match something on the server unless they are
        # server-side stopwords.
        run = run_with(server, seed=6, strategy=FrequencyFromLearned("ctf"))
        steady_state = run.queries[5:]
        failures = [record for record in steady_state if record.failed]
        # Stopwords dominate raw ctf, so early failures happen — but
        # every failure must be a server-stopword query.
        from repro.text.stopwords import INQUERY_STOPWORDS

        assert all(record.term in INQUERY_STOPWORDS for record in failures)

    def test_different_docs_per_query_reach_same_coverage(self, server, actual):
        # Table 2's headline: N barely matters for small N.
        coverage = {}
        for docs_per_query in (2, 4):
            run = run_with(
                server,
                seed=7,
                config=SamplerConfig(docs_per_query=docs_per_query),
            )
            projected = run.model.project(server.index.analyzer)
            coverage[docs_per_query] = ctf_ratio(projected, actual)
        assert abs(coverage[2] - coverage[4]) < 0.08


class TestCostAccounting:
    def test_server_meters_match_run(self, server):
        server.reset_costs()
        run = run_with(server, seed=8, max_docs=100)
        assert server.costs.queries_run == run.queries_run
        assert server.costs.failed_queries == run.failed_queries
        # The server returned at least as many documents as the client
        # kept (duplicates are returned but not re-kept).
        assert server.costs.documents_returned >= run.documents_examined

    def test_bytes_metered(self, server):
        server.reset_costs()
        run_with(server, seed=9, max_docs=50)
        assert server.costs.bytes_returned > 0
