"""Unit tests for repro.index.search."""

from __future__ import annotations

import pytest

from repro.corpus import Corpus, Document
from repro.index import InvertedIndex, SearchEngine
from repro.text import Analyzer


@pytest.fixture(scope="module")
def engine() -> SearchEngine:
    corpus = Corpus(
        [
            Document(doc_id="d1", text="apple apple apple"),
            Document(doc_id="d2", text="apple banana"),
            Document(doc_id="d3", text="banana banana cherry"),
            Document(doc_id="d4", text="cherry apple banana plum"),
            Document(doc_id="d5", text="plum plum plum plum plum"),
        ]
    )
    return SearchEngine(InvertedIndex(corpus, Analyzer.raw()))


class TestSingleTermSearch:
    def test_highest_tf_ranks_first(self, engine):
        results = engine.search("apple", n=3)
        assert results[0].doc_id == "d1"

    def test_returns_at_most_n(self, engine):
        assert len(engine.search("apple", n=2)) == 2

    def test_returns_all_matches_when_fewer_than_n(self, engine):
        assert len(engine.search("cherry", n=10)) == 2

    def test_unknown_term_returns_empty(self, engine):
        assert engine.search("durian", n=5) == []

    def test_scores_descending(self, engine):
        results = engine.search("banana", n=5)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_invalid_n(self, engine):
        with pytest.raises(ValueError):
            engine.search("apple", n=0)

    def test_deterministic_tie_break_by_doc_order(self, engine):
        # d2 and d4 both contain "apple" once; d2 is shorter so scores
        # higher, but equal-score ties must resolve by document order.
        corpus = Corpus(
            [
                Document(doc_id="a", text="kiwi fig"),
                Document(doc_id="b", text="kiwi fig"),
                Document(doc_id="c", text="kiwi fig"),
            ]
        )
        same_engine = SearchEngine(InvertedIndex(corpus, Analyzer.raw()))
        results = same_engine.search("kiwi", n=3)
        assert [r.doc_id for r in results] == ["a", "b", "c"]


class TestMultiTermSearch:
    def test_documents_matching_more_terms_preferred(self, engine):
        # d2 matches both query terms once; d1 matches only "apple"
        # (albeit three times) — the saturating tf keeps d2 ahead.
        results = engine.search("apple banana", n=5)
        assert results[0].doc_id == "d2"

    def test_multi_term_includes_partial_matches(self, engine):
        doc_ids = {r.doc_id for r in engine.search("cherry plum", n=5)}
        assert {"d3", "d4", "d5"} <= doc_ids

    def test_empty_query(self, engine):
        assert engine.search("", n=5) == []

    def test_punctuation_only_query(self, engine):
        assert engine.search("!!!", n=5) == []


class TestAnalyzedQueries:
    def test_query_goes_through_database_analyzer(self):
        corpus = Corpus([Document(doc_id="d", text="The dogs were running fast")])
        stemmed_engine = SearchEngine(InvertedIndex(corpus))  # inquery-style
        # Raw query forms must match the stemmed index.
        assert stemmed_engine.search("running", n=1)
        assert stemmed_engine.search("dogs", n=1)
        assert stemmed_engine.search("dog", n=1)

    def test_stopword_query_fails(self):
        corpus = Corpus([Document(doc_id="d", text="the cat sat")])
        stemmed_engine = SearchEngine(InvertedIndex(corpus))
        assert stemmed_engine.search("the", n=5) == []


class TestFetch:
    def test_fetch_returns_document(self, engine):
        assert engine.fetch("d3").text == "banana banana cherry"

    def test_fetch_missing_raises(self, engine):
        with pytest.raises(KeyError):
            engine.fetch("zzz")
