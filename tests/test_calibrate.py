"""Unit tests for repro.lm.calibrate."""

from __future__ import annotations

import pytest

from repro.lm import LanguageModel, scale_to_collection, spearman_rank_correlation


@pytest.fixture
def sample() -> LanguageModel:
    model = LanguageModel(name="sample")
    model.add_term("alpha", df=40, ctf=100)
    model.add_term("beta", df=10, ctf=15)
    model.add_term("gamma", df=1, ctf=1)
    model.documents_seen = 100
    model.tokens_seen = 5_000
    return model


class TestScaleToCollection:
    def test_linear_scaling(self, sample):
        scaled = scale_to_collection(sample, estimated_documents=1000)
        assert scaled.df("alpha") == 400
        assert scaled.ctf("alpha") == 1000
        assert scaled.documents_seen == 1000
        assert scaled.tokens_seen == 50_000

    def test_rankings_preserved(self, sample):
        scaled = scale_to_collection(sample, estimated_documents=1000)
        assert spearman_rank_correlation(scaled, sample, metric="df") == pytest.approx(1.0)

    def test_no_term_vanishes_when_scaling_down(self, sample):
        scaled = scale_to_collection(sample, estimated_documents=10)
        assert scaled.df("gamma") >= 1
        assert scaled.ctf("gamma") >= scaled.df("gamma")

    def test_df_never_exceeds_ctf(self, sample):
        for target in (3, 37, 999, 12345):
            scaled = scale_to_collection(sample, estimated_documents=target)
            for stats in scaled.items():
                assert stats.df <= stats.ctf

    def test_identity_scale(self, sample):
        scaled = scale_to_collection(sample, estimated_documents=100)
        for term in sample:
            assert scaled.df(term) == sample.df(term)

    def test_name(self, sample):
        assert scale_to_collection(sample, 10).name == "sample-calibrated"
        assert scale_to_collection(sample, 10, name="x").name == "x"

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError, match="no documents"):
            scale_to_collection(LanguageModel(), 100)

    def test_invalid_estimate(self, sample):
        with pytest.raises(ValueError):
            scale_to_collection(sample, 0)
