"""Tests for `repro classify` and the `--route-topics` serving flags."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.classify.persist import CLASSIFICATIONS_FILE


class TestClassifyProbe:
    def test_synthetic_federation_classifies(self, capsys):
        code = main(["classify", "probe", "--synthetic", "3", "--scale", "0.02"])
        output = capsys.readouterr().out
        assert code == 0
        assert "Classification over" in output
        assert "db0" in output and "db2" in output

    def test_save_router_persists_classifications(self, tmp_path, capsys):
        store = tmp_path / "store"
        code = main(
            ["classify", "probe", "--synthetic", "3", "--scale", "0.02",
             "--save-router", str(store)]
        )
        assert code == 0
        assert "saved classifications" in capsys.readouterr().out
        payload = json.loads((store / CLASSIFICATIONS_FILE).read_text())
        assert payload["schema"] == "repro-classify/1"
        assert set(payload["classifications"]) == {"db0", "db1", "db2"}

    def test_rejects_single_corpus(self, tmp_path, capsys):
        corpus = tmp_path / "only.jsonl"
        main(["generate", "--profile", "cacm", "--scale", "0.05", "-o", str(corpus)])
        code = main(["classify", "probe", str(corpus)])
        assert code == 2
        assert "at least two" in capsys.readouterr().err


class TestClassifyBench:
    def test_writes_report_and_prints_tables(self, tmp_path, capsys):
        out = tmp_path / "BENCH_classify.json"
        code = main(
            ["classify", "bench", "--scale", "0.02", "--seeds", "0",
             "--budgets", "1", "4", "-o", str(out)]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "accuracy vs probe budget" in output
        assert "Routed vs broadcast" in output
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-classify-bench/1"
        assert [row["budget"] for row in payload["accuracy_vs_budget"]] == [1, 4]
        routing = payload["routing"]
        assert (
            routing["routed_databases_per_query"]
            <= routing["broadcast_databases_per_query"]
        )

    def test_validates_inputs(self, capsys):
        assert main(["classify", "bench", "--databases", "1"]) == 2
        assert "databases" in capsys.readouterr().err
        assert main(["classify", "bench", "--budgets", "0"]) == 2
        assert "budgets" in capsys.readouterr().err


class TestRouteTopicsFlags:
    def test_serve_bench_reports_fanout_saving(self, capsys):
        code = main(
            ["serve-bench", "--synthetic", "4", "--scale", "0.02",
             "--budget", "0.05", "--route-topics"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "search_routed" in output
        assert "Fan-out (topic-aware routing)" in output

    def test_federate_files_need_persisted_classifications(self, tmp_path, capsys):
        corpora = []
        for name, seed in (("a", 1), ("b", 2)):
            raw = tmp_path / f"raw-{name}.jsonl"
            main(["generate", "--profile", "cacm", "--scale", "0.05",
                  "--seed", str(seed), "-o", str(raw)])
            renamed = tmp_path / f"{name}.jsonl"
            with raw.open() as src, renamed.open("w") as dst:
                for index, line in enumerate(src):
                    record = json.loads(line)
                    record["doc_id"] = f"{name}-{index}"
                    dst.write(json.dumps(record) + "\n")
            corpora.append(str(renamed))
        code = main(
            ["federate", *corpora, "--query", "system", "--route-topics"]
        )
        assert code == 2
        assert "persisted classifications" in capsys.readouterr().err
