"""Unit tests for repro.synth.vocabulary."""

from __future__ import annotations

import pytest

from repro.synth.vocabulary import SyntheticVocabulary, VocabularyConfig, synthesize_word
from repro.text.stopwords import INQUERY_STOPWORDS


class TestSynthesizeWord:
    def test_deterministic(self):
        assert synthesize_word(123) == synthesize_word(123)

    def test_distinct_for_distinct_indices(self):
        words = {synthesize_word(i) for i in range(5000)}
        assert len(words) == 5000

    def test_lowercase_alpha_only(self):
        for i in range(0, 3000, 17):
            word = synthesize_word(i)
            assert word.isalpha() and word == word.lower()

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            synthesize_word(-1)

    def test_words_grow_with_index(self):
        # Large indices roll over into multi-syllable words.
        assert len(synthesize_word(10_000_000)) > len(synthesize_word(0))


class TestVocabularyConfig:
    def test_invalid_content_size(self):
        with pytest.raises(ValueError):
            VocabularyConfig(content_size=0)

    def test_invalid_family_fraction(self):
        with pytest.raises(ValueError):
            VocabularyConfig(family_fraction=1.5)


class TestSyntheticVocabulary:
    @pytest.fixture(scope="class")
    def vocab(self) -> SyntheticVocabulary:
        return SyntheticVocabulary(
            VocabularyConfig(content_size=2000, domain_terms=("excel", "windows")),
            seed=3,
        )

    def test_stopwords_are_the_library_stoplist(self, vocab):
        assert set(vocab.stopwords) == INQUERY_STOPWORDS

    def test_content_size_respected(self, vocab):
        assert len(vocab.content) == 2000

    def test_domain_terms_lead_content(self, vocab):
        assert vocab.content[:2] == ["excel", "windows"]

    def test_no_duplicates_across_classes(self, vocab):
        words = vocab.all_words()
        assert len(words) == len(set(words))

    def test_no_stopwords_in_content(self, vocab):
        assert not set(vocab.content) & INQUERY_STOPWORDS

    def test_deterministic_given_seed(self):
        config = VocabularyConfig(content_size=500)
        first = SyntheticVocabulary(config, seed=9).all_words()
        second = SyntheticVocabulary(config, seed=9).all_words()
        assert first == second

    def test_different_seeds_differ(self):
        config = VocabularyConfig(content_size=500)
        first = SyntheticVocabulary(config, seed=1).all_words()
        second = SyntheticVocabulary(config, seed=2).all_words()
        assert first != second

    def test_morphological_families_present(self, vocab):
        # With family_fraction > 0 some suffixed variants must exist
        # alongside their lemma.
        content = set(vocab.content)
        families = [word for word in content if word + "s" in content]
        assert families, "expected at least one lemma with its plural variant"

    def test_noise_sizes(self, vocab):
        numbers = [w for w in vocab.noise if w.isdigit()]
        shorts = [w for w in vocab.noise if not w.isdigit()]
        assert len(numbers) == vocab.config.noise_numbers
        assert len(shorts) == vocab.config.noise_short
        assert all(len(w) <= 2 for w in shorts)

    def test_size_property(self, vocab):
        assert vocab.size == len(vocab.all_words())
