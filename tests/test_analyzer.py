"""Unit tests for repro.text.analyzer."""

from __future__ import annotations

from repro.text.analyzer import Analyzer
from repro.text.stopwords import INQUERY_STOPWORDS


class TestRawAnalyzer:
    def test_keeps_stopwords_and_suffixes(self):
        # The sampling client's view: "Stopwords were not discarded ...
        # Suffixes were not removed" (paper Section 4.1).
        analyzer = Analyzer.raw()
        assert analyzer.analyze("The running dogs") == ["the", "running", "dogs"]

    def test_case_folds(self):
        assert Analyzer.raw().analyze("Apple") == ["apple"]


class TestInqueryStyleAnalyzer:
    def test_removes_stopwords(self):
        analyzer = Analyzer.inquery_style()
        assert "the" not in analyzer.analyze("the apple tree")

    def test_stems(self):
        analyzer = Analyzer.inquery_style()
        assert analyzer.analyze("running quickly") == ["run", "quickli"]

    def test_stopwords_removed_before_stemming(self):
        # "running" must not be protected by the stoplist containing "run"-like
        # words; conversely stopwords are matched on the surface form.
        analyzer = Analyzer.inquery_style()
        terms = analyzer.analyze("this is a test of stemming and stopping")
        assert "test" in terms
        assert "stem" in terms
        assert all(term not in INQUERY_STOPWORDS or term == "stem" for term in terms)


class TestStoppedAnalyzer:
    def test_stops_without_stemming(self):
        analyzer = Analyzer.stopped()
        assert analyzer.analyze("the running dogs") == ["running", "dogs"]


class TestProjectTerm:
    def test_stopword_projects_to_none(self):
        assert Analyzer.inquery_style().project_term("the") is None

    def test_content_term_is_stemmed(self):
        assert Analyzer.inquery_style().project_term("running") == "run"

    def test_case_folded_before_lookup(self):
        assert Analyzer.inquery_style().project_term("The") is None

    def test_raw_projects_identity_lowercased(self):
        assert Analyzer.raw().project_term("Running") == "running"

    def test_project_matches_analyze(self):
        # Projecting a single token must agree with analyzing it as text.
        analyzer = Analyzer.inquery_style()
        for token in ("databases", "apples", "selection", "query"):
            assert [analyzer.project_term(token)] == analyzer.analyze(token)


class TestAnalyzerEquality:
    def test_frozen_dataclass_equality_ignores_stemmer_instance(self):
        assert Analyzer.raw() == Analyzer.raw()
        assert Analyzer.inquery_style() == Analyzer.inquery_style()
        assert Analyzer.raw() != Analyzer.inquery_style()
