"""Unit tests for repro.synth.generator."""

from __future__ import annotations

import pytest

from repro.synth.generator import CorpusGenerator, GeneratorConfig
from repro.synth.topics import TopicSpace
from repro.synth.vocabulary import SyntheticVocabulary, VocabularyConfig
from repro.text import Analyzer


@pytest.fixture(scope="module")
def space() -> TopicSpace:
    vocab = SyntheticVocabulary(VocabularyConfig(content_size=1200), seed=0)
    return TopicSpace(vocab, num_topics=3, topic_vocab_size=150, seed=0)


@pytest.fixture(scope="module")
def corpus(space):
    config = GeneratorConfig(num_documents=120, mean_doc_length=60.0)
    return CorpusGenerator(space, config, seed=4).generate(name="testgen")


class TestGeneratorConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_documents": 0},
            {"mean_doc_length": 0.0},
            {"min_doc_length": 0},
            {"purity": 1.5},
            {"sentence_words": (0, 5)},
            {"sentence_words": (8, 5)},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            GeneratorConfig(**kwargs)


class TestGeneratedCorpus:
    def test_document_count(self, corpus):
        assert len(corpus) == 120

    def test_unique_sequential_ids(self, corpus):
        assert corpus.doc_ids[0] == "testgen-000000"
        assert len(set(corpus.doc_ids)) == 120

    def test_every_document_has_topic_label(self, corpus, space):
        topic_names = {topic.name for topic in space.topics}
        assert all(document.topic in topic_names for document in corpus)

    def test_every_document_has_title(self, corpus):
        assert all(document.title for document in corpus)

    def test_documents_have_min_length(self, corpus):
        analyzer = Analyzer.raw()
        for document in corpus:
            assert len(analyzer.analyze(document.text)) >= 10

    def test_mean_length_near_configured(self, corpus):
        analyzer = Analyzer.raw()
        lengths = [len(analyzer.analyze(document.text)) for document in corpus]
        mean = sum(lengths) / len(lengths)
        assert 45 < mean < 80  # lognormal mean 60, sampling noise allowed

    def test_sentences_are_capitalized_with_periods(self, corpus):
        text = corpus[0].text
        assert text[0].isupper()
        assert text.rstrip().endswith(".")
        sentences = [s for s in text.split(". ") if s]
        assert len(sentences) >= 2

    def test_deterministic_given_seed(self, space):
        config = GeneratorConfig(num_documents=20, mean_doc_length=30.0)
        first = CorpusGenerator(space, config, seed=9).generate()
        second = CorpusGenerator(space, config, seed=9).generate()
        assert [d.text for d in first] == [d.text for d in second]

    def test_different_seeds_differ(self, space):
        config = GeneratorConfig(num_documents=20, mean_doc_length=30.0)
        first = CorpusGenerator(space, config, seed=1).generate()
        second = CorpusGenerator(space, config, seed=2).generate()
        assert [d.text for d in first] != [d.text for d in second]

    def test_multiple_topics_used(self, corpus):
        assert len(corpus.topics()) > 1

    def test_purity_one_single_topic_tokens(self, space):
        # With purity 1.0 every token comes from the primary topic, so
        # the generator never needs a secondary topic.
        config = GeneratorConfig(num_documents=10, mean_doc_length=30.0, purity=1.0)
        corpus = CorpusGenerator(space, config, seed=3).generate()
        assert len(corpus) == 10
