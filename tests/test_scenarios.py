"""Unit tests for the adversarial-world testbed (repro.scenarios)."""

from __future__ import annotations

import pytest

from repro.corpus import Corpus
from repro.index import DatabaseServer
from repro.index.server import ServerPolicy
from repro.sampling import MaxDocuments, QueryBasedSampler, RandomFromOther
from repro.sampling.sampler import SamplerConfig
from repro.scenarios import (
    BIAS_KINDS,
    SCENARIO_SPECS,
    DriftingDatabase,
    DriftSchedule,
    RankBiasedServer,
    build_clustered_world,
    build_heavy_tailed_federation,
    build_overlapping_partition,
    heavy_tailed_sizes,
    overlap_statistics,
    run_scenarios_bench,
    scenario_names,
    validate_scenarios_bench,
)
from repro.scenarios.cluster import distinctive_cluster_terms
from repro.synth import cacm_like, wsj88_like


@pytest.fixture(scope="module")
def corpus() -> Corpus:
    return wsj88_like().build(seed=21, scale=0.04)


@pytest.fixture(scope="module")
def query(corpus) -> str:
    """A high-df eligible content term of the synthetic corpus."""
    from repro.sampling.selection import is_eligible_query_term

    model = DatabaseServer(corpus).actual_language_model()
    for stats in model.top_terms(100, key="df"):
        if is_eligible_query_term(stats.term):
            return stats.term
    raise AssertionError("no eligible query term in corpus")


class TestRegistry:
    def test_specs_are_complete(self):
        assert scenario_names() == ["cluster", "drift", "result_caps", "overlap", "heavy_tail"]
        for spec in SCENARIO_SPECS:
            assert spec.description and spec.breaks and spec.signal


class TestDriftSchedule:
    def test_phase_at(self):
        schedule = DriftSchedule((10, 30))
        assert [schedule.phase_at(q) for q in (0, 9, 10, 29, 30, 100)] == [0, 0, 1, 1, 2, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftSchedule((0,))
        with pytest.raises(ValueError):
            DriftSchedule((20, 10))
        with pytest.raises(ValueError):
            DriftSchedule((10, 10))
        with pytest.raises(ValueError):
            schedule = DriftSchedule((5,))
            schedule.phase_at(-1)

    def test_from_seed_deterministic_and_bounded(self):
        a = DriftSchedule.from_seed(3, num_switches=4, mean_interval=20)
        b = DriftSchedule.from_seed(3, num_switches=4, mean_interval=20)
        assert a == b
        assert len(a.switch_points) == 4
        intervals = [
            point - previous
            for previous, point in zip((0,) + a.switch_points, a.switch_points)
        ]
        assert all(10 <= interval <= 30 for interval in intervals)
        assert DriftSchedule.from_seed(4, num_switches=4, mean_interval=20) != a

    def test_from_seed_validation(self):
        with pytest.raises(ValueError):
            DriftSchedule.from_seed(0, num_switches=0)
        with pytest.raises(ValueError):
            DriftSchedule.from_seed(0, num_switches=1, mean_interval=1)


class TestDriftingDatabase:
    @pytest.fixture(scope="class")
    def phases(self):
        old = DatabaseServer(Corpus(cacm_like().build(seed=1, scale=0.05), name="ph"))
        new = DatabaseServer(Corpus(wsj88_like().build(seed=2, scale=0.01), name="ph"))
        return old, new

    def test_validation(self, phases):
        with pytest.raises(ValueError):
            DriftingDatabase(phases[:1], DriftSchedule(()))
        with pytest.raises(ValueError):
            DriftingDatabase(phases, DriftSchedule((5, 10)))

    def test_switches_on_schedule(self, phases):
        drifting = DriftingDatabase(phases, DriftSchedule((3,)), name="drifty")
        assert drifting.name == "drifty"
        sizes = []
        for _ in range(5):
            drifting.run_query("the committee reported", max_docs=2)
            sizes.append(drifting.num_documents)
        # Queries 1-3 are served by phase 0; the clock advances after
        # each, so query 4 onward sees phase 1's ground truth.
        assert drifting.phase_index == 1
        assert sizes[:2] == [phases[0].num_documents] * 2
        assert sizes[3:] == [phases[1].num_documents] * 2
        assert len(drifting.actual_language_model()) > 0

    def test_hit_count_does_not_advance_clock(self, phases):
        drifting = DriftingDatabase(phases, DriftSchedule((2,)))
        for _ in range(10):
            drifting.hit_count("committee")
        assert drifting.phase_index == 0
        assert drifting.queries_seen == 0


class TestClusteredWorld:
    @pytest.fixture(scope="class")
    def world(self):
        return build_clustered_world(
            num_clusters=4, documents=80, vocabulary_size=1200, seed=9
        )

    def test_deterministic(self, world):
        again = build_clustered_world(
            num_clusters=4, documents=80, vocabulary_size=1200, seed=9
        )
        assert [d.text for d in world.corpus] == [d.text for d in again.corpus]
        assert [d.text for d in world.control] == [d.text for d in again.control]
        assert world.bootstrap_terms == again.bootstrap_terms

    def test_matched_pair_shape(self, world):
        assert len(world.corpus) == len(world.control) == 80
        assert world.corpus.name == "clustered"
        assert world.control.name == "control"
        assert world.num_clusters == 4
        assert len(world.bootstrap_terms) == 8

    def test_bootstrap_terms_live_inside_cluster_zero(self, world):
        topics = {d.topic for d in world.corpus}
        assert topics == {f"topic{i:03d}" for i in range(4)}
        # The bootstrap terms must retrieve something from the corpus.
        server = DatabaseServer(world.corpus)
        hits = sum(server.hit_count(term) for term in world.bootstrap_terms)
        assert hits > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            build_clustered_world(num_clusters=1)
        with pytest.raises(ValueError):
            build_clustered_world(shared_head=-1)
        with pytest.raises(ValueError):
            # 100 content words cannot give 64 clusters a block.
            build_clustered_world(num_clusters=64, vocabulary_size=100, shared_head=90)

    def test_distinctive_terms_validation(self, world):
        from repro.scenarios.cluster import _build_space
        from repro.synth.vocabulary import SyntheticVocabulary, VocabularyConfig

        vocabulary = SyntheticVocabulary(VocabularyConfig(content_size=400), seed=0)
        space = _build_space(vocabulary, num_clusters=2, shared_head=10, clustered=True)
        with pytest.raises(ValueError):
            distinctive_cluster_terms(space, cluster=5)
        with pytest.raises(ValueError):
            distinctive_cluster_terms(space, cluster=0, count=0)
        terms = distinctive_cluster_terms(space, cluster=1, count=5)
        assert len(terms) == 5


class TestOverlap:
    def test_replicates_with_same_doc_id(self, corpus):
        parts = build_overlapping_partition(corpus, 4, replication=0.5, seed=3)
        stats = overlap_statistics(parts)
        assert stats.unique_documents == len(corpus)
        assert stats.replicated_documents > 0
        assert stats.total_documents == len(corpus) + stats.replicated_documents
        # Every document rolls exactly once, so at most one replica.
        assert stats.max_copies == 2
        assert 0.0 < stats.replication_rate <= 0.75

    def test_zero_replication_is_plain_partition(self, corpus):
        parts = build_overlapping_partition(corpus, 3, replication=0.0, seed=3)
        stats = overlap_statistics(parts)
        assert stats.replicated_documents == 0
        assert stats.max_copies == 1
        assert stats.total_documents == len(corpus)

    def test_deterministic(self, corpus):
        first = build_overlapping_partition(corpus, 4, replication=0.4, seed=7)
        second = build_overlapping_partition(corpus, 4, replication=0.4, seed=7)
        assert [sorted(p.doc_ids) for p in first] == [sorted(p.doc_ids) for p in second]

    def test_validation(self, corpus):
        with pytest.raises(ValueError):
            build_overlapping_partition(corpus, 1)
        with pytest.raises(ValueError):
            build_overlapping_partition(corpus, 3, replication=1.5)


class TestHeavyTail:
    def test_sizes_exact_and_floored(self):
        sizes = heavy_tailed_sizes(6, 500, alpha=1.4, min_documents=15)
        assert sum(sizes) == 500
        assert all(size >= 15 for size in sizes)
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[0] / sizes[-1] >= 2.0

    def test_sizes_validation(self):
        with pytest.raises(ValueError):
            heavy_tailed_sizes(0, 100)
        with pytest.raises(ValueError):
            heavy_tailed_sizes(3, 100, min_documents=0)
        with pytest.raises(ValueError):
            heavy_tailed_sizes(5, 40, min_documents=10)

    def test_federation_matches_sizes(self, corpus):
        parts = build_heavy_tailed_federation(corpus, 4, alpha=1.3, min_documents=20, seed=5)
        assert [len(p) for p in parts] == heavy_tailed_sizes(
            4, len(corpus), alpha=1.3, min_documents=20
        )
        assert [p.name for p in parts] == ["db0", "db1", "db2", "db3"]
        all_ids = [doc_id for p in parts for doc_id in p.doc_ids]
        assert len(all_ids) == len(set(all_ids)) == len(corpus)
        again = build_heavy_tailed_federation(corpus, 4, alpha=1.3, min_documents=20, seed=5)
        assert [sorted(p.doc_ids) for p in parts] == [sorted(p.doc_ids) for p in again]


@pytest.fixture(scope="module")
def capped_server(corpus) -> DatabaseServer:
    return DatabaseServer(corpus, policy=ServerPolicy(max_results_per_query=3))


class TestRankBiasedServer:
    def test_validation(self, capped_server):
        assert "payola" not in BIAS_KINDS
        with pytest.raises(ValueError):
            RankBiasedServer(capped_server, bias="payola")
        with pytest.raises(ValueError):
            RankBiasedServer(capped_server, pool_factor=0)
        with pytest.raises(ValueError):
            RankBiasedServer(capped_server).run_query("market", max_docs=0)

    def test_respects_inner_cap(self, capped_server, query):
        biased = RankBiasedServer(capped_server, bias="hash")
        documents = biased.run_query(query, max_docs=10)
        assert 0 < len(documents) <= 3

    def test_bias_orders(self, corpus, query):
        server = DatabaseServer(corpus)
        newest = RankBiasedServer(server, bias="newest").run_query(query, max_docs=5)
        ids = [d.doc_id for d in newest]
        assert ids == sorted(ids, reverse=True)
        shortest = RankBiasedServer(server, bias="shortest").run_query(query, max_docs=5)
        lengths = [len(d.text) for d in shortest]
        assert lengths == sorted(lengths)

    def test_hash_bias_deterministic_but_seed_sensitive(self, corpus, query):
        server = DatabaseServer(corpus)
        first = RankBiasedServer(server, bias="hash", seed=1).run_query(query, max_docs=5)
        second = RankBiasedServer(server, bias="hash", seed=1).run_query(query, max_docs=5)
        other = RankBiasedServer(server, bias="hash", seed=2).run_query(query, max_docs=5)
        assert [d.doc_id for d in first] == [d.doc_id for d in second]
        assert {d.doc_id for d in first} != {d.doc_id for d in other} or [
            d.doc_id for d in first
        ] != [d.doc_id for d in other]

    def test_meters_own_costs_not_inners(self, corpus, query):
        server = DatabaseServer(corpus)
        biased = RankBiasedServer(server, bias="hash")
        before = server.costs.queries_run
        biased.run_query(query, max_docs=4)
        biased.hit_count(query)
        assert biased.costs.queries_run == 1
        assert biased.costs.hit_count_queries == 1
        assert server.costs.queries_run == before  # pool fetched via engine

    def test_ground_truth_passthrough(self, corpus):
        server = DatabaseServer(corpus)
        biased = RankBiasedServer(server)
        assert biased.num_documents == server.num_documents
        assert biased.name == server.name


class TestCapVersusSampler:
    """Satellite: ServerPolicy.max_results_per_query against the sampler."""

    def _sample(self, server, budget: int, seed: int = 13):
        sampler = QueryBasedSampler(
            server,
            bootstrap=RandomFromOther(server.actual_language_model()),
            stopping=MaxDocuments(budget),
            config=SamplerConfig(docs_per_query=8, keep_documents=False),
            seed=seed,
        )
        return sampler.run()

    def test_capped_database_needs_more_queries_for_same_budget(self, corpus):
        uncapped = self._sample(DatabaseServer(corpus), budget=60)
        capped = self._sample(
            DatabaseServer(corpus, policy=ServerPolicy(max_results_per_query=3)),
            budget=60,
        )
        assert uncapped.documents_examined == capped.documents_examined == 60
        assert len(capped.queries) > len(uncapped.queries)

    def test_capped_model_quality_comparable(self, corpus):
        from repro.lm.compare import spearman_rank_correlation

        actual = DatabaseServer(corpus).actual_language_model()
        uncapped = self._sample(DatabaseServer(corpus), budget=60)
        capped = self._sample(
            DatabaseServer(corpus, policy=ServerPolicy(max_results_per_query=3)),
            budget=60,
        )
        fit_uncapped = spearman_rank_correlation(uncapped.model, actual)
        fit_capped = spearman_rank_correlation(capped.model, actual)
        assert fit_capped >= fit_uncapped - 0.15

    def test_costs_account_for_truncation(self, corpus):
        server = DatabaseServer(corpus, policy=ServerPolicy(max_results_per_query=3))
        run = self._sample(server, budget=30)
        # Every query's yield was clipped at the cap, and the meters saw
        # only the clipped results.
        assert server.costs.documents_returned <= server.costs.queries_run * 3
        assert server.costs.documents_returned >= run.documents_examined


class TestScenariosBench:
    @pytest.fixture(scope="class")
    def report(self):
        return run_scenarios_bench(scale=0.5, seed=0, only=["overlap"])

    def test_smoke_report_passes_and_validates(self, report):
        assert report.all_passed
        payload = report.as_dict()
        assert payload["schema"] == "repro-scenarios-bench/1"
        validate_scenarios_bench(payload)

    def test_validation_rejects_bad_payloads(self, report):
        good = report.as_dict()
        with pytest.raises(ValueError):
            validate_scenarios_bench({**good, "schema": "other/1"})
        with pytest.raises(ValueError):
            validate_scenarios_bench({**good, "scenarios": []})
        broken = [dict(s, scenario="mystery") for s in good["scenarios"]]
        with pytest.raises(ValueError):
            validate_scenarios_bench({**good, "scenarios": broken})
        failed = [dict(s, passed=False) for s in good["scenarios"]]
        with pytest.raises(ValueError):
            validate_scenarios_bench({**good, "scenarios": failed})

    def test_bench_input_validation(self):
        with pytest.raises(ValueError):
            run_scenarios_bench(scale=0.0)
        with pytest.raises(ValueError):
            run_scenarios_bench(only=["nonsense"])

    def test_committed_benchmark_is_valid(self):
        import json
        from pathlib import Path

        payload = json.loads(Path("BENCH_scenarios.json").read_text())
        validate_scenarios_bench(payload)
        assert {s["scenario"] for s in payload["scenarios"]} == set(scenario_names())


class TestScenariosCli:
    def test_list_prints_registry(self, capsys):
        from repro.cli import main

        code = main(["scenarios", "list"])
        output = capsys.readouterr().out
        assert code == 0
        for name in scenario_names():
            assert name in output

    def test_bench_writes_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "BENCH_scenarios.json"
        code = main(
            ["scenarios", "bench", "--only", "heavy_tail", "--scale", "0.5",
             "--seed", "0", "-o", str(out)]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "heavy_tail" in output
        import json

        payload = json.loads(out.read_text())
        validate_scenarios_bench(payload)
