"""Tests for fleet workers, the scheduler, and the orchestrated sweep."""

from __future__ import annotations

import pytest

from repro.corpus import Corpus
from repro.fleet import (
    DurableJobQueue,
    FleetScheduler,
    FleetWorker,
    JobState,
    RefreshOutcome,
    RefreshRunner,
    popularity_from_metrics,
    run_refresh_sweep,
    run_workers,
)
from repro.index import DatabaseServer
from repro.lm import dumps_language_model
from repro.obs import TraceRecorder
from repro.sampling import (
    MaxDocuments,
    QueryBasedSampler,
    RandomFromOther,
    RefreshPolicy,
)
from repro.sampling.staleness import StalenessReport
from repro.sampling.transport import CircuitBreaker, ServerTimeout, SimulatedClock
from repro.synth import cacm_like, wsj88_like


@pytest.fixture(scope="module")
def federation():
    """Three small databases; 'drifty' has been silently replaced."""
    servers = {
        "alpha": DatabaseServer(cacm_like().build(seed=11, scale=0.15)),
        "beta": DatabaseServer(cacm_like().build(seed=22, scale=0.15)),
        "drifty": DatabaseServer(cacm_like().build(seed=33, scale=0.15)),
    }
    models = {}
    for name, server in servers.items():
        sampler = QueryBasedSampler(
            server,
            bootstrap=RandomFromOther(server.actual_language_model()),
            stopping=MaxDocuments(80),
            seed=7,
        )
        models[name] = sampler.run().model
    # Replace drifty's content after its model was learned.
    replacement = Corpus(wsj88_like().build(seed=99, scale=0.05), name="drifty")
    servers = dict(servers, drifty=DatabaseServer(replacement))
    return servers, models


def bootstrap_factory_for(servers):
    return lambda name: RandomFromOther(servers[name].actual_language_model())


class TestSweepEquivalence:
    """The queued sweep must reproduce refresh_all query for query."""

    @pytest.mark.parametrize("num_workers", [1, 3])
    def test_sweep_matches_refresh_all(self, federation, num_workers):
        servers, models = federation
        policy = RefreshPolicy(refresh_documents=60)
        expected_models, expected_reports, expected_refreshed = policy.refresh_all(
            servers, models, bootstrap_factory_for(servers), seed=13
        )
        result = run_refresh_sweep(
            servers,
            models,
            bootstrap_factory_for(servers),
            policy=policy,
            seed=13,
            num_workers=num_workers,
        )
        assert result.outcome.reports == expected_reports
        assert sorted(result.outcome.refreshed) == sorted(expected_refreshed)
        for name in servers:
            assert dumps_language_model(result.outcome.models[name]) == (
                dumps_language_model(expected_models[name])
            )
        assert not result.failed_jobs

    def test_missing_model_rejected(self, federation):
        servers, models = federation
        partial = {name: models[name] for name in list(models)[:-1]}
        with pytest.raises(ValueError, match="missing stored models"):
            run_refresh_sweep(servers, partial, bootstrap_factory_for(servers))

    def test_budget_limits_the_round(self, federation, tmp_path):
        servers, models = federation
        scheduler = FleetScheduler()
        queue = DurableJobQueue(tmp_path / "q", backoff_base=0.01)
        result = run_refresh_sweep(
            servers,
            models,
            bootstrap_factory_for(servers),
            policy=RefreshPolicy(refresh_documents=40),
            queue=queue,
            scheduler=scheduler,
            budget=1,
            num_workers=1,
        )
        assert len(result.outcome.reports) == 1
        assert len(result.jobs) == 1


class TestWorker:
    def test_worker_drains_queue(self, tmp_path):
        queue = DurableJobQueue(tmp_path / "q", clock=SimulatedClock())
        for name in ["a", "b", "c"]:
            queue.submit("noop", name)
        worker = FleetWorker("w1", queue, lambda job: {"db": job.database})
        stats = worker.run(poll_interval=0.0)
        assert stats.completed == 3
        assert queue.drained()
        assert queue.get("noop--a").result == {"db": "a"}

    def test_handler_error_is_retried_then_parked(self, tmp_path):
        clock = SimulatedClock()
        queue = DurableJobQueue(
            tmp_path / "q", clock=clock, backoff_base=0.0, lease_seconds=10.0
        )
        queue.submit("noop", "a", max_attempts=2)

        def explode(job):
            raise ValueError("bad job payload")

        worker = FleetWorker("w1", queue, explode)
        stats = worker.run(poll_interval=0.0)
        assert stats.failed == 2
        job = next(iter(queue.jobs()))
        assert job.state == JobState.FAILED
        assert "bad job payload" in job.error

    def test_retryable_errors_open_the_breaker(self, tmp_path):
        clock = SimulatedClock()
        queue = DurableJobQueue(
            tmp_path / "q", clock=clock, backoff_base=0.0, lease_seconds=10.0
        )
        for index in range(4):
            queue.submit("noop", f"db{index}", max_attempts=1)

        def timeout(job):
            raise ServerTimeout("backend stuck")

        breaker = CircuitBreaker(failure_threshold=2, cooldown=60.0, clock=clock)
        worker = FleetWorker("w1", queue, timeout, breaker=breaker)
        stats = worker.run(poll_interval=0.0)
        # First two jobs hit the backend and trip the breaker; the rest
        # are rejected without touching it.
        assert breaker.state == CircuitBreaker.OPEN
        assert stats.rejected_by_breaker == 2
        assert stats.failed == 4

    def test_pool_scales_out(self, tmp_path):
        queue = DurableJobQueue(tmp_path / "q", clock=SimulatedClock())
        for index in range(8):
            queue.submit("noop", f"db{index}")
        stats = run_workers(queue, lambda job: {}, num_workers=4)
        assert len(stats) == 4
        assert sum(s.completed for s in stats) == 8
        assert queue.drained()

    def test_on_job_done_hook_fires(self, tmp_path):
        queue = DurableJobQueue(tmp_path / "q", clock=SimulatedClock())
        queue.submit("noop", "a")
        queue.submit("noop", "b")
        seen = []
        worker = FleetWorker(
            "w1", queue, lambda job: {}, on_job_done=seen.append
        )
        worker.run(poll_interval=0.0)
        assert seen == [1, 2]


class TestRefreshRunner:
    def test_rejects_unknown_kind_and_database(self, federation):
        servers, models = federation
        runner = RefreshRunner(
            servers,
            models,
            bootstrap_factory_for(servers),
            RefreshPolicy(),
            RefreshOutcome(),
        )
        from repro.fleet.queue import Job

        with pytest.raises(ValueError, match="job kind"):
            runner(Job(job_id="x", kind="wrong", database="alpha"))
        with pytest.raises(KeyError, match="unknown database"):
            runner(Job(job_id="x", kind="refresh_check", database="nope"))

    def test_checkpointed_refresh_matches_plain(self, federation, tmp_path):
        """A checkpointing runner produces the same refreshed model."""
        servers, models = federation
        policy = RefreshPolicy(refresh_documents=50)
        bootstrap = bootstrap_factory_for(servers)
        expected, _, refreshed = policy.maybe_refresh(
            servers["drifty"], models["drifty"], bootstrap("drifty"), seed=21
        )
        assert refreshed

        from repro.fleet.queue import Job

        outcome = RefreshOutcome()
        runner = RefreshRunner(
            servers,
            models,
            bootstrap,
            policy,
            outcome,
            checkpoint_root=tmp_path / "ckpt",
        )
        result = runner(
            Job(job_id="j1", kind="refresh_check", database="drifty", payload={"seed": 21})
        )
        assert result["refreshed"] is True
        assert dumps_language_model(outcome.models["drifty"]) == (
            dumps_language_model(expected)
        )
        # The checkpointer left its per-job directory behind.
        assert (tmp_path / "ckpt" / "j1" / "sampler.json").is_file()


class TestScheduler:
    def make_report(self, spearman: float) -> StalenessReport:
        return StalenessReport(rdiff_score=0.1, spearman=spearman, probe_documents=50)

    def test_score_formula(self):
        scheduler = FleetScheduler()
        scheduler.observe_report("a", self.make_report(spearman=0.8))
        rows = scheduler.priorities(["a"], popularity={"a": 10.0})
        row = rows[0]
        assert row.staleness == pytest.approx(0.2)
        assert row.score == pytest.approx(0.2 * 10.0 / 1.0)

    def test_unknown_database_assumed_stale(self):
        scheduler = FleetScheduler()
        assert scheduler.staleness_estimate("never-probed") == 1.0

    def test_ranking_blends_staleness_and_popularity(self):
        scheduler = FleetScheduler()
        scheduler.observe_report("fresh-popular", self.make_report(0.9))
        scheduler.observe_report("stale-unpopular", self.make_report(0.0))
        scheduler.observe_report("stale-popular", self.make_report(0.0))
        popularity = {"fresh-popular": 100.0, "stale-popular": 50.0, "stale-unpopular": 1.0}
        names = [
            row.name
            for row in scheduler.priorities(sorted(popularity), popularity=popularity)
        ]
        assert names[0] == "stale-popular"

    def test_refreshed_database_scores_zero_staleness(self):
        scheduler = FleetScheduler()
        scheduler.observe_report("a", self.make_report(0.0))
        scheduler.observe_refreshed("a")
        assert scheduler.staleness_estimate("a") == 0.0

    def test_cost_divides_score(self):
        scheduler = FleetScheduler(cost_estimator=lambda name: 4.0 if name == "pricey" else 1.0)
        rows = {row.name: row for row in scheduler.priorities(["pricey", "cheap"])}
        assert rows["pricey"].score == pytest.approx(rows["cheap"].score / 4.0)

    def test_bad_cost_rejected(self):
        scheduler = FleetScheduler(cost_estimator=lambda name: 0.0)
        with pytest.raises(ValueError, match="cost"):
            scheduler.priorities(["a"])

    def test_enqueue_sets_priorities_and_seeds(self, tmp_path):
        from repro.utils.rand import derive_seed

        scheduler = FleetScheduler()
        scheduler.observe_report("fresh", self.make_report(0.9))
        queue = DurableJobQueue(tmp_path / "q", clock=SimulatedClock())
        jobs = scheduler.enqueue(queue, ["fresh", "unknown"], seed=42)
        assert [job.database for job in jobs] == ["unknown", "fresh"]
        assert jobs[0].priority > jobs[1].priority
        assert jobs[0].payload["seed"] == derive_seed(42, "staleness", "unknown")

    def test_enqueue_budget_truncates(self, tmp_path):
        scheduler = FleetScheduler()
        queue = DurableJobQueue(tmp_path / "q", clock=SimulatedClock())
        jobs = scheduler.enqueue(queue, ["a", "b", "c"], budget=2)
        assert len(jobs) == 2
        with pytest.raises(ValueError):
            scheduler.enqueue(queue, ["a"], budget=0)


class TestPopularityCounters:
    def test_service_search_counts_selected_databases(self, federation):
        from repro.federation.service import FederatedSearchService, SearchRequest

        servers, models = federation
        recorder = TraceRecorder()
        service = FederatedSearchService(
            servers, databases_per_query=2, recorder=recorder
        )
        service.use_models(models)
        response = service.search(SearchRequest(query="algorithm system", n=5))
        assert response.searched
        for name in response.searched:
            assert recorder.metrics.counter(f"serving.db.{name}.searched").value >= 1

    def test_popularity_from_metrics_smoothing(self):
        recorder = TraceRecorder()
        recorder.count("serving.db.hot.searched", 9)
        popularity = popularity_from_metrics(recorder.metrics, ["hot", "cold"])
        assert popularity == {"hot": 10.0, "cold": 1.0}
