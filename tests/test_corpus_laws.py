"""Statistical validation of the synthetic corpora.

DESIGN.md's substitution argument rests on generated corpora having the
same statistical shape as real text: Zipfian term frequencies, Heaps
vocabulary growth, stopword-dominated running text, and a heavy hapax
tail.  These tests check each of those properties on a mid-sized
generated corpus.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus import Corpus
from repro.lm import LanguageModel
from repro.synth import wsj88_like
from repro.text import Analyzer
from repro.text.stopwords import INQUERY_STOPWORDS
from repro.utils.zipf import fit_heaps, fit_zipf


@pytest.fixture(scope="module")
def corpus() -> Corpus:
    return wsj88_like().build(seed=2, scale=0.15)  # ~1,800 documents


@pytest.fixture(scope="module")
def raw_model(corpus) -> LanguageModel:
    analyzer = Analyzer.raw()
    model = LanguageModel(name="raw")
    for document in corpus:
        model.add_document(analyzer.analyze(document.text))
    return model


class TestZipfShape:
    def test_frequencies_fit_power_law(self, raw_model):
        frequencies = np.array([raw_model.ctf(t) for t in raw_model])
        exponent, r_squared = fit_zipf(frequencies, skip_top=20)
        assert 0.5 < exponent < 1.6, f"Zipf exponent {exponent} out of text-like range"
        assert r_squared > 0.9, f"power-law fit too poor (R²={r_squared})"

    def test_top_term_dominance(self, raw_model):
        # The most frequent term should account for a few percent of
        # all tokens, as "the" does in English.
        top = raw_model.top_terms(1, key="ctf")[0]
        share = top.ctf / raw_model.tokens_seen
        assert 0.01 < share < 0.15


class TestHeapsGrowth:
    def test_vocabulary_grows_sublinearly(self, corpus):
        analyzer = Analyzer.raw()
        seen: set[str] = set()
        tokens_so_far = 0
        token_counts, vocab_sizes = [], []
        for document in corpus:
            terms = analyzer.analyze(document.text)
            tokens_so_far += len(terms)
            seen.update(terms)
            token_counts.append(tokens_so_far)
            vocab_sizes.append(len(seen))
        k, beta = fit_heaps(np.array(token_counts), np.array(vocab_sizes))
        assert 0.3 < beta < 0.9, f"Heaps beta {beta} out of text-like range"
        assert k > 0

    def test_vocabulary_never_saturates(self, corpus):
        # New terms must keep appearing even in the last tenth of the
        # corpus (Zipf's long tail; the basis of the paper's claim that
        # database size cannot be estimated by sampling).
        analyzer = Analyzer.raw()
        cut = int(len(corpus) * 0.9)
        seen: set[str] = set()
        for document in (corpus[i] for i in range(cut)):
            seen.update(analyzer.analyze(document.text))
        new_terms = 0
        for document in (corpus[i] for i in range(cut, len(corpus))):
            new_terms += sum(1 for t in set(analyzer.analyze(document.text)) if t not in seen)
        assert new_terms > 0


class TestTextComposition:
    def test_stopword_share_english_like(self, raw_model):
        stop_tokens = sum(raw_model.ctf(t) for t in raw_model if t in INQUERY_STOPWORDS)
        share = stop_tokens / raw_model.tokens_seen
        assert 0.30 < share < 0.60, f"stopword share {share} not English-like"

    def test_hapax_heavy_tail(self, raw_model):
        # In real text roughly half the vocabulary occurs once (paper
        # Section 4.3.1 cites ~50%).  With a finite synthetic vocabulary
        # the share is lower (~20-30%; see DESIGN.md substitutions) but
        # must remain substantial for percentage-learned curves to
        # behave like the paper's.
        hapax = sum(1 for t in raw_model if raw_model.ctf(t) == 1)
        share = hapax / len(raw_model)
        assert share > 0.15, f"hapax share {share} too small for text-like data"

    def test_numbers_present_but_rare(self, raw_model):
        numeric_tokens = sum(raw_model.ctf(t) for t in raw_model if t.isdigit())
        share = numeric_tokens / raw_model.tokens_seen
        assert 0 < share < 0.05


class TestHeterogeneityContrast:
    def test_topic_count_differs_between_profiles(self):
        from repro.synth import cacm_like, trec123_like

        cacm = cacm_like().build(seed=0, scale=0.05)
        trec = trec123_like().build(seed=0, scale=0.02)
        assert len(cacm.topics()) <= 2
        assert len(trec.topics()) > 10
