"""Unit tests for repro.sizeest (capture-recapture and sample-resample)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lm import LanguageModel
from repro.sampling import RandomFromOther
from repro.sizeest import (
    capture_recapture_report,
    collect_capture_samples,
    estimate_database_size,
    lincoln_petersen,
    sample_resample,
    schnabel,
    schumacher_eschmeyer,
)


class TestLincolnPetersen:
    def test_known_overlap(self):
        # n1=50, n2=40, m=19 → Chapman: 51*41/20 - 1 = 103.55
        sample_a = {f"d{i}" for i in range(50)}
        sample_b = {f"d{i}" for i in range(31, 71)}
        assert lincoln_petersen(sample_a, sample_b) == pytest.approx(103.55)

    def test_no_overlap_finite(self):
        estimate = lincoln_petersen({"a", "b"}, {"c", "d"})
        assert np.isfinite(estimate)
        assert estimate == pytest.approx(3 * 3 / 1 - 1)

    def test_identical_samples(self):
        sample = {f"d{i}" for i in range(10)}
        # Full recapture: estimate ≈ the sample size itself.
        assert lincoln_petersen(sample, sample) == pytest.approx(11 * 11 / 11 - 1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            lincoln_petersen(set(), {"a"})


class TestMultiSample:
    def _uniform_samples(self, population: int, size: int, k: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        return [
            {f"d{i}" for i in rng.choice(population, size=size, replace=False)}
            for _ in range(k)
        ]

    @pytest.mark.parametrize("estimator", [schnabel, schumacher_eschmeyer])
    def test_recovers_population_under_uniform_sampling(self, estimator):
        # With truly uniform samples the estimators should land near the
        # true population (within ~30% at this effort).
        samples = self._uniform_samples(population=1000, size=150, k=5, seed=3)
        estimate = estimator(samples)
        assert 650 < estimate < 1400, estimate

    @pytest.mark.parametrize("estimator", [schnabel, schumacher_eschmeyer])
    def test_requires_two_samples(self, estimator):
        with pytest.raises(ValueError):
            estimator([{"a"}])

    @pytest.mark.parametrize("estimator", [schnabel, schumacher_eschmeyer])
    def test_rejects_empty_sample(self, estimator):
        with pytest.raises(ValueError):
            estimator([{"a"}, set()])

    def test_schumacher_disjoint_samples_undefined(self):
        with pytest.raises(ValueError, match="recaptures"):
            schumacher_eschmeyer([{"a"}, {"b"}, {"c"}])

    def test_schnabel_disjoint_samples_finite(self):
        # Schnabel's +1 correction keeps disjoint samples finite (a
        # large estimate, as it should be).
        estimate = schnabel([{f"a{i}" for i in range(10)}, {f"b{i}" for i in range(10)}])
        assert np.isfinite(estimate)
        assert estimate >= 100


class TestCollectSamples:
    def test_episodes_differ(self, small_synthetic_server):
        bootstrap = RandomFromOther(small_synthetic_server.actual_language_model())
        samples = collect_capture_samples(
            small_synthetic_server, bootstrap, num_samples=3, docs_per_sample=30, seed=2
        )
        assert len(samples) == 3
        assert all(len(sample) == 30 for sample in samples)
        assert samples[0] != samples[1]

    def test_minimum_two(self, small_synthetic_server):
        bootstrap = RandomFromOther(small_synthetic_server.actual_language_model())
        with pytest.raises(ValueError):
            collect_capture_samples(small_synthetic_server, bootstrap, num_samples=1)


class FakeCountingServer:
    """Reports hit counts from a fixed df table."""

    name = "fake"

    def __init__(self, df_table: dict[str, int]) -> None:
        self.df_table = df_table

    def hit_count(self, query: str) -> int:
        return self.df_table.get(query, 0)


class TestSampleResample:
    def _sample_model(self, term_df: dict[str, int], documents: int) -> LanguageModel:
        model = LanguageModel(name="sample")
        for term, df in term_df.items():
            model.add_term(term, df=df, ctf=df)
        model.documents_seen = documents
        return model

    def test_exact_when_proportions_match(self):
        # Sample of 50 docs: term in 10 of them.  Server: 200 hits.
        # N̂ = 200 * 50 / 10 = 1000, for every probe → median 1000.
        sample = self._sample_model({"alpha": 10, "beta": 5}, documents=50)
        server = FakeCountingServer({"alpha": 200, "beta": 100})
        estimate = sample_resample(server, sample, num_probes=2)
        assert estimate.estimate == pytest.approx(1000.0)

    def test_median_resists_outliers(self):
        sample = self._sample_model({"alpha": 10, "beta": 10, "gamma": 10}, documents=50)
        server = FakeCountingServer({"alpha": 200, "beta": 200, "gamma": 10_000})
        estimate = sample_resample(server, sample, num_probes=3)
        assert estimate.estimate == pytest.approx(1000.0)

    def test_failed_probes_skipped(self):
        sample = self._sample_model({"alpha": 10, "zzz": 10}, documents=50)
        server = FakeCountingServer({"alpha": 200})  # zzz unknown to server
        estimate = sample_resample(server, sample, num_probes=2)
        assert estimate.probe_terms == ("alpha",)

    def test_all_probes_failing_raises(self):
        sample = self._sample_model({"alpha": 10}, documents=50)
        with pytest.raises(ValueError, match="every probe failed"):
            sample_resample(FakeCountingServer({}), sample)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError, match="no documents"):
            sample_resample(FakeCountingServer({}), LanguageModel())

    def test_min_sample_df_respected(self):
        sample = self._sample_model({"rare": 1, "common": 10}, documents=50)
        server = FakeCountingServer({"rare": 5, "common": 200})
        estimate = sample_resample(server, sample, num_probes=5, min_sample_df=2)
        assert "rare" not in estimate.probe_terms


class TestOrchestration:
    def test_sample_resample_end_to_end(self, small_synthetic_server):
        bootstrap = RandomFromOther(small_synthetic_server.actual_language_model())
        estimate = estimate_database_size(
            small_synthetic_server,
            bootstrap,
            method="sample_resample",
            sample_documents=80,
            seed=3,
        )
        true_size = small_synthetic_server.num_documents
        assert 0.3 * true_size < estimate < 3 * true_size

    def test_capture_end_to_end(self, small_synthetic_server):
        bootstrap = RandomFromOther(small_synthetic_server.actual_language_model())
        estimate = estimate_database_size(
            small_synthetic_server,
            bootstrap,
            method="schnabel",
            sample_documents=120,
            seed=3,
        )
        assert estimate > 0

    def test_report_contains_both_estimators(self, small_synthetic_server):
        bootstrap = RandomFromOther(small_synthetic_server.actual_language_model())
        report = capture_recapture_report(
            small_synthetic_server, bootstrap, sample_documents=120, seed=3
        )
        assert set(report) == {"schnabel", "schumacher_eschmeyer"}
        for result in report.values():
            assert result.num_samples == 4
            assert result.distinct_documents <= result.documents_drawn

    def test_unknown_method(self, small_synthetic_server):
        bootstrap = RandomFromOther(small_synthetic_server.actual_language_model())
        with pytest.raises(ValueError, match="unknown method"):
            estimate_database_size(small_synthetic_server, bootstrap, method="magic")


class TestServerHitCount:
    def test_matches_df_for_single_term(self, tiny_server):
        # "apple" stems to "appl"; hit_count goes through the analyzer.
        assert tiny_server.hit_count("apple") == tiny_server.index.df("appl")

    def test_union_for_multi_term(self, tiny_server):
        apple = tiny_server.hit_count("apple")
        honey = tiny_server.hit_count("honey")
        union = tiny_server.hit_count("apple honey")
        assert union <= apple + honey
        assert union >= max(apple, honey)

    def test_stopword_query_zero(self, tiny_server):
        assert tiny_server.hit_count("the") == 0

    def test_metered(self, tiny_corpus):
        from repro.index import DatabaseServer

        server = DatabaseServer(tiny_corpus)
        server.hit_count("apple")
        server.hit_count("honey")
        assert server.costs.hit_count_queries == 2
