"""Unit and behavioural tests for repro.sampling.sampler."""

from __future__ import annotations

import pytest

from repro.corpus import Document
from repro.lm import LanguageModel
from repro.sampling import (
    ListBootstrap,
    MaxDocuments,
    MaxQueries,
    QueryBasedSampler,
    RandomFromOther,
    SamplerConfig,
)
from repro.text import Analyzer


class FakeDatabase:
    """Scripted database: term → fixed result list."""

    name = "fake"

    def __init__(self, responses: dict[str, list[Document]]) -> None:
        self.responses = responses
        self.queries: list[str] = []

    def run_query(self, query: str, max_docs: int) -> list[Document]:
        self.queries.append(query)
        return self.responses.get(query, [])[:max_docs]


def doc(doc_id: str, text: str) -> Document:
    return Document(doc_id=doc_id, text=text)


class TestSamplerLoop:
    def test_learns_from_returned_documents(self):
        database = FakeDatabase(
            {"seed": [doc("a", "seed grows tree"), doc("b", "tree has leaves")]}
        )
        sampler = QueryBasedSampler(
            database,
            bootstrap=ListBootstrap(["seed"]),
            stopping=MaxDocuments(2),
        )
        run = sampler.run()
        assert run.documents_examined == 2
        assert run.model.df("tree") == 2
        assert run.model.ctf("seed") == 1

    def test_chains_queries_from_learned_vocabulary(self):
        database = FakeDatabase(
            {
                "seed": [doc("a", "alpha beta")],
                "alpha": [doc("b", "gamma delta")],
                "beta": [doc("c", "epsilon zeta")],
                "gamma": [doc("d", "eta theta")],
            }
        )
        sampler = QueryBasedSampler(
            database,
            bootstrap=ListBootstrap(["seed"]),
            stopping=MaxDocuments(3),
            seed=1,
        )
        run = sampler.run()
        # After the bootstrap query, every query term must have been
        # learned from a previously retrieved document.
        learned_so_far = {"seed"}
        for record in run.queries[1:]:
            assert record.term in run.model.vocabulary or record.term in learned_so_far

    def test_duplicate_documents_not_recounted(self):
        same_doc = doc("dup", "apple banana")
        database = FakeDatabase(
            {"seed": [same_doc], "apple": [same_doc], "banana": [same_doc]}
        )
        sampler = QueryBasedSampler(
            database,
            bootstrap=ListBootstrap(["seed"]),
            stopping=MaxQueries(3),
        )
        run = sampler.run()
        assert run.documents_examined == 1
        assert run.model.df("apple") == 1

    def test_duplicates_counted_when_configured(self):
        same_doc = doc("dup", "apple banana")
        database = FakeDatabase(
            {"seed": [same_doc], "apple": [same_doc], "banana": [same_doc]}
        )
        sampler = QueryBasedSampler(
            database,
            bootstrap=ListBootstrap(["seed"]),
            stopping=MaxQueries(3),
            config=SamplerConfig(unique_documents=False),
        )
        run = sampler.run()
        assert run.documents_examined == 3
        assert run.model.df("apple") == 3

    def test_failed_queries_recorded(self):
        database = FakeDatabase({"seed": [doc("a", "alpha beta")]})
        sampler = QueryBasedSampler(
            database,
            bootstrap=ListBootstrap(["seed", "missing"]),
            stopping=MaxQueries(3),
        )
        run = sampler.run()
        assert run.failed_queries >= 1
        failed = [record for record in run.queries if record.failed]
        assert all(record.new_documents == 0 for record in failed)

    def test_vocabulary_exhausted_stops(self):
        database = FakeDatabase({})  # every query fails
        sampler = QueryBasedSampler(
            database,
            bootstrap=ListBootstrap(["one", "two"]),
            stopping=MaxDocuments(100),
        )
        run = sampler.run()
        assert run.stop_reason == "vocabulary_exhausted"
        assert run.queries_run == 2

    def test_query_budget_guard(self):
        # An inexhaustible bootstrap against an empty database must hit
        # the safety guard, not loop forever.
        other = LanguageModel()
        for i in range(10_000):
            other.add_term(f"term{i:05d}", df=1, ctf=1)
        database = FakeDatabase({})
        sampler = QueryBasedSampler(
            database,
            bootstrap=RandomFromOther(other),
            stopping=MaxDocuments(10),
            config=SamplerConfig(max_total_queries=25),
        )
        run = sampler.run()
        assert run.stop_reason == "query_budget_guard"
        assert run.queries_run == 25

    def test_exact_document_budget(self, small_synthetic_server):
        sampler = QueryBasedSampler(
            small_synthetic_server,
            bootstrap=RandomFromOther(small_synthetic_server.actual_language_model()),
            stopping=MaxDocuments(120),
            seed=3,
        )
        run = sampler.run()
        assert run.documents_examined == 120
        assert run.model.documents_seen == 120


class TestSnapshots:
    def test_snapshots_at_interval_boundaries(self, small_synthetic_server):
        sampler = QueryBasedSampler(
            small_synthetic_server,
            bootstrap=RandomFromOther(small_synthetic_server.actual_language_model()),
            stopping=MaxDocuments(100),
            config=SamplerConfig(snapshot_interval=25),
            seed=5,
        )
        run = sampler.run()
        assert [s.documents_examined for s in run.snapshots] == [25, 50, 75, 100]

    def test_snapshots_are_frozen_copies(self, small_synthetic_server):
        sampler = QueryBasedSampler(
            small_synthetic_server,
            bootstrap=RandomFromOther(small_synthetic_server.actual_language_model()),
            stopping=MaxDocuments(60),
            config=SamplerConfig(snapshot_interval=30),
            seed=5,
        )
        run = sampler.run()
        first, second = run.snapshots[0], run.snapshots[1]
        assert first.model.documents_seen == 30
        assert second.model.documents_seen == 60
        assert len(second.model) >= len(first.model)

    def test_final_partial_snapshot_added(self):
        database = FakeDatabase({"seed": [doc("a", "alpha beta gamma")]})
        sampler = QueryBasedSampler(
            database,
            bootstrap=ListBootstrap(["seed"]),
            stopping=MaxQueries(1),
            config=SamplerConfig(snapshot_interval=50),
        )
        run = sampler.run()
        assert run.snapshots[-1].documents_examined == 1

    def test_snapshot_at_lookup(self, small_synthetic_server):
        sampler = QueryBasedSampler(
            small_synthetic_server,
            bootstrap=RandomFromOther(small_synthetic_server.actual_language_model()),
            stopping=MaxDocuments(100),
            seed=2,
        )
        run = sampler.run()
        assert run.snapshot_at(50).documents_examined == 50
        with pytest.raises(KeyError):
            run.snapshot_at(51)


class TestClientAnalyzer:
    def test_raw_analyzer_keeps_stopwords(self):
        database = FakeDatabase({"seed": [doc("a", "the seed and the tree")]})
        sampler = QueryBasedSampler(
            database,
            bootstrap=ListBootstrap(["seed"]),
            stopping=MaxDocuments(1),
        )
        run = sampler.run()
        assert "the" in run.model
        assert run.model.ctf("the") == 2

    def test_custom_analyzer_applied(self):
        database = FakeDatabase({"seed": [doc("a", "the seeds are growing")]})
        sampler = QueryBasedSampler(
            database,
            bootstrap=ListBootstrap(["seed"]),
            stopping=MaxDocuments(1),
            analyzer=Analyzer.inquery_style(),
        )
        run = sampler.run()
        assert "the" not in run.model
        assert "seed" in run.model  # stemmed
        assert "grow" in run.model


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"docs_per_query": 0},
            {"snapshot_interval": 0},
            {"max_total_queries": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            SamplerConfig(**kwargs)


class TestDeterminism:
    def test_same_seed_same_run(self, small_synthetic_server):
        def one_run(seed: int):
            sampler = QueryBasedSampler(
                small_synthetic_server,
                bootstrap=RandomFromOther(
                    small_synthetic_server.actual_language_model()
                ),
                stopping=MaxDocuments(80),
                seed=seed,
            )
            return sampler.run()

        first, second = one_run(9), one_run(9)
        assert first.query_terms == second.query_terms
        assert set(first.model.vocabulary) == set(second.model.vocabulary)

    def test_different_seed_different_queries(self, small_synthetic_server):
        def one_run(seed: int):
            sampler = QueryBasedSampler(
                small_synthetic_server,
                bootstrap=RandomFromOther(
                    small_synthetic_server.actual_language_model()
                ),
                stopping=MaxDocuments(80),
                seed=seed,
            )
            return sampler.run()

        assert one_run(1).query_terms != one_run(2).query_terms
