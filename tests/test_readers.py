"""Unit tests for repro.corpus.readers (JSONL, directory, TREC SGML)."""

from __future__ import annotations

import json

import pytest

from repro.corpus import (
    Corpus,
    Document,
    read_directory,
    read_jsonl,
    read_trec_sgml,
    write_jsonl,
)


class TestJsonl:
    def test_round_trip(self, tmp_path, tiny_corpus):
        path = tmp_path / "corpus.jsonl"
        write_jsonl(tiny_corpus, path)
        loaded = read_jsonl(path)
        assert len(loaded) == len(tiny_corpus)
        for original, reloaded in zip(tiny_corpus, loaded):
            assert reloaded.doc_id == original.doc_id
            assert reloaded.text == original.text

    def test_round_trip_preserves_topic_and_title(self, tmp_path):
        corpus = Corpus([Document(doc_id="a", text="x", title="T", topic="sports")])
        path = tmp_path / "c.jsonl"
        write_jsonl(corpus, path)
        loaded = read_jsonl(path)
        assert loaded.get("a").topic == "sports"
        assert loaded.get("a").title == "T"

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text('{"doc_id": "a", "text": "x"}\n\n{"doc_id": "b", "text": "y"}\n')
        assert len(read_jsonl(path)) == 2

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text('{"doc_id": "a", "text": "x"}\nnot json\n')
        with pytest.raises(ValueError, match=":2"):
            read_jsonl(path)

    def test_missing_fields_rejected(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text(json.dumps({"doc_id": "a"}) + "\n")
        with pytest.raises(ValueError, match="doc_id.*text|'doc_id' and 'text'"):
            read_jsonl(path)

    def test_corpus_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mycorpus.jsonl"
        path.write_text('{"doc_id": "a", "text": "x"}\n')
        assert read_jsonl(path).name == "mycorpus"


class TestDirectory:
    def test_reads_txt_files_sorted(self, tmp_path):
        (tmp_path / "b.txt").write_text("bravo")
        (tmp_path / "a.txt").write_text("alpha")
        (tmp_path / "ignored.md").write_text("nope")
        corpus = read_directory(tmp_path)
        assert corpus.doc_ids == ["a", "b"]
        assert corpus.get("a").text == "alpha"

    def test_missing_directory(self, tmp_path):
        with pytest.raises(NotADirectoryError):
            read_directory(tmp_path / "nope")


TREC_SAMPLE = """
<DOC>
<DOCNO> WSJ880101-0001 </DOCNO>
<HL> Market Rallies </HL>
<TEXT>
Stocks rallied sharply in heavy trading.
</TEXT>
</DOC>
<DOC>
<DOCNO>WSJ880101-0002</DOCNO>
<TEXT>Bonds <b>fell</b> on inflation fears.</TEXT>
</DOC>
"""


class TestTrecSgml:
    def test_parses_documents(self, tmp_path):
        path = tmp_path / "wsj.sgml"
        path.write_text(TREC_SAMPLE)
        corpus = read_trec_sgml(path)
        assert len(corpus) == 2
        assert corpus.doc_ids == ["WSJ880101-0001", "WSJ880101-0002"]

    def test_extracts_text_and_strips_tags(self, tmp_path):
        path = tmp_path / "wsj.sgml"
        path.write_text(TREC_SAMPLE)
        corpus = read_trec_sgml(path)
        assert "rallied" in corpus.get("WSJ880101-0001").text
        second = corpus.get("WSJ880101-0002").text
        assert "fell" in second and "<b>" not in second

    def test_extracts_title(self, tmp_path):
        path = tmp_path / "wsj.sgml"
        path.write_text(TREC_SAMPLE)
        assert corpus_title(read_trec_sgml(path)) == "Market Rallies"

    def test_directory_of_files(self, tmp_path):
        (tmp_path / "part1.sgml").write_text(TREC_SAMPLE.replace("0001", "1001").replace("0002", "1002"))
        (tmp_path / "part2.sgml").write_text(TREC_SAMPLE.replace("0001", "2001").replace("0002", "2002"))
        corpus = read_trec_sgml(tmp_path)
        assert len(corpus) == 4

    def test_doc_without_docno_rejected(self, tmp_path):
        path = tmp_path / "bad.sgml"
        path.write_text("<DOC><TEXT>orphan</TEXT></DOC>")
        with pytest.raises(ValueError, match="DOCNO"):
            read_trec_sgml(path)


def corpus_title(corpus: Corpus) -> str:
    return corpus[0].title


class TestTrecSgmlWriter:
    def test_round_trip(self, tmp_path, tiny_corpus):
        from repro.corpus import write_trec_sgml

        path = tmp_path / "tiny.sgml"
        write_trec_sgml(tiny_corpus, path)
        loaded = read_trec_sgml(path)
        assert loaded.doc_ids == tiny_corpus.doc_ids
        for original, reloaded in zip(tiny_corpus, loaded):
            assert reloaded.text == original.text

    def test_title_round_trip(self, tmp_path):
        from repro.corpus import write_trec_sgml

        corpus = Corpus([Document(doc_id="t1", text="body text", title="A Headline")])
        path = tmp_path / "titled.sgml"
        write_trec_sgml(corpus, path)
        assert read_trec_sgml(path)[0].title == "A Headline"

    def test_synthetic_corpus_round_trip(self, tmp_path):
        from repro.corpus import write_trec_sgml
        from repro.synth import cacm_like

        corpus = cacm_like().build(seed=3, scale=0.02)
        path = tmp_path / "synth.sgml"
        write_trec_sgml(corpus, path)
        loaded = read_trec_sgml(path)
        assert len(loaded) == len(corpus)
        assert loaded[0].text == corpus[0].text
