"""Additional CLI coverage: estimator methods, summarize options."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def corpus_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-more") / "corpus.jsonl"
    assert main(["generate", "--profile", "cacm", "--scale", "0.08", "--seed", "7",
                 "-o", str(path)]) == 0
    return path


class TestEstimateSizeMethods:
    @pytest.mark.parametrize("method", ["schnabel", "schumacher_eschmeyer"])
    def test_capture_methods_run(self, corpus_path, method, capsys):
        code = main(
            ["estimate-size", str(corpus_path), "--method", method,
             "--sample-docs", "60", "--seed", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "estimated size" in output

    def test_seed_changes_estimate(self, corpus_path, capsys):
        outputs = []
        for seed in ("1", "2"):
            main(["estimate-size", str(corpus_path), "--sample-docs", "40",
                  "--seed", seed])
            outputs.append(capsys.readouterr().out)
        # Different seeds sample differently; the printed estimates may
        # coincide but the actual-size line must be identical.
        actual_lines = [o.splitlines()[-1] for o in outputs]
        assert actual_lines[0] == actual_lines[1]


class TestSummarizeOptions:
    @pytest.fixture(scope="class")
    def model_path(self, corpus_path, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-more-model") / "m.lm"
        assert main(["sample", str(corpus_path), "-o", str(path),
                     "--max-docs", "60", "--seed", "3"]) == 0
        return path

    @pytest.mark.parametrize("rank_by", ["df", "ctf", "avg_tf"])
    def test_all_rankings(self, model_path, rank_by, capsys):
        assert main(["summarize", str(model_path), "--rank-by", rank_by,
                     "-k", "6", "--min-df", "1"]) == 0
        assert f"ranked by {rank_by}" in capsys.readouterr().out

    def test_min_df_changes_output(self, model_path, capsys):
        main(["summarize", str(model_path), "-k", "30", "--min-df", "1"])
        loose = capsys.readouterr().out
        main(["summarize", str(model_path), "-k", "30", "--min-df", "5"])
        strict = capsys.readouterr().out
        assert loose != strict
