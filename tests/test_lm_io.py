"""Unit tests for repro.lm.io (serialization)."""

from __future__ import annotations

import pytest

from repro.lm import LanguageModel, load_language_model, save_language_model


@pytest.fixture
def model() -> LanguageModel:
    built = LanguageModel(name="serialized")
    built.add_document(["apple", "apple", "banana"])
    built.add_document(["cherry"])
    return built


class TestRoundTrip:
    def test_statistics_preserved(self, tmp_path, model):
        path = tmp_path / "model.lm"
        save_language_model(model, path)
        loaded = load_language_model(path)
        assert set(loaded) == set(model)
        for term in model:
            assert loaded.df(term) == model.df(term)
            assert loaded.ctf(term) == model.ctf(term)

    def test_counters_preserved(self, tmp_path, model):
        path = tmp_path / "model.lm"
        save_language_model(model, path)
        loaded = load_language_model(path)
        assert loaded.documents_seen == 2
        assert loaded.tokens_seen == 4
        assert loaded.name == "serialized"

    def test_terms_sorted_in_file(self, tmp_path, model):
        path = tmp_path / "model.lm"
        save_language_model(model, path)
        lines = path.read_text().splitlines()[1:]
        terms = [line.split()[0] for line in lines]
        assert terms == sorted(terms)

    def test_empty_model(self, tmp_path):
        path = tmp_path / "empty.lm"
        save_language_model(LanguageModel(name="empty"), path)
        loaded = load_language_model(path)
        assert len(loaded) == 0


class TestErrorHandling:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.lm"
        path.write_text("apple 1 2\n")
        with pytest.raises(ValueError, match="header"):
            load_language_model(path)

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.lm"
        path.write_text("#language-model name=x documents_seen=0 tokens_seen=0\napple 1\n")
        with pytest.raises(ValueError, match=":2"):
            load_language_model(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_language_model(tmp_path / "nope.lm")
