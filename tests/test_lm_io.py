"""Unit tests for repro.lm.io (serialization)."""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lm import (
    LanguageModel,
    dumps_language_model,
    load_language_model,
    loads_language_model,
    save_language_model,
)


@pytest.fixture
def model() -> LanguageModel:
    built = LanguageModel(name="serialized")
    built.add_document(["apple", "apple", "banana"])
    built.add_document(["cherry"])
    return built


class TestRoundTrip:
    def test_statistics_preserved(self, tmp_path, model):
        path = tmp_path / "model.lm"
        save_language_model(model, path)
        loaded = load_language_model(path)
        assert set(loaded) == set(model)
        for term in model:
            assert loaded.df(term) == model.df(term)
            assert loaded.ctf(term) == model.ctf(term)

    def test_counters_preserved(self, tmp_path, model):
        path = tmp_path / "model.lm"
        save_language_model(model, path)
        loaded = load_language_model(path)
        assert loaded.documents_seen == 2
        assert loaded.tokens_seen == 4
        assert loaded.name == "serialized"

    def test_terms_sorted_in_file(self, tmp_path, model):
        path = tmp_path / "model.lm"
        save_language_model(model, path)
        lines = path.read_text().splitlines()[1:]
        terms = [line.split()[0] for line in lines]
        assert terms == sorted(terms)

    def test_empty_model(self, tmp_path):
        path = tmp_path / "empty.lm"
        save_language_model(LanguageModel(name="empty"), path)
        loaded = load_language_model(path)
        assert len(loaded) == 0


class TestHeaderEscaping:
    """Names with spaces or ``=`` used to corrupt the header round trip."""

    @pytest.mark.parametrize(
        "name",
        [
            "two words",
            "key=value",
            "spaces and = signs",
            "tab\tname",
            "newline\nname",
            "ünïcode-dätabase",
            "",
        ],
    )
    def test_awkward_names_round_trip(self, tmp_path, name):
        model = LanguageModel(name=name)
        model.add_document(["apple", "banana"])
        path = tmp_path / "model.lm"
        save_language_model(model, path)
        loaded = load_language_model(path)
        assert loaded.name == name
        assert loaded.documents_seen == 1
        assert loaded.tokens_seen == 2

    def test_escaped_name_does_not_break_other_fields(self, tmp_path):
        model = LanguageModel(name="documents_seen=999 tokens_seen=999")
        model.add_document(["apple"])
        path = tmp_path / "model.lm"
        save_language_model(model, path)
        loaded = load_language_model(path)
        assert loaded.name == "documents_seen=999 tokens_seen=999"
        assert loaded.documents_seen == 1
        assert loaded.tokens_seen == 1


class TestRoundTripEdgeCases:
    def test_unicode_terms(self, tmp_path):
        model = LanguageModel(name="unicode")
        for term in ["café", "naïve", "日本語", "résumé", "παράδειγμα"]:
            model.add_term(term, df=2, ctf=5)
        path = tmp_path / "model.lm"
        save_language_model(model, path)
        loaded = load_language_model(path)
        assert set(loaded) == set(model)
        for term in model:
            assert loaded.df(term) == 2
            assert loaded.ctf(term) == 5

    def test_large_counts(self, tmp_path):
        model = LanguageModel(name="large")
        model.add_term("common", df=10**12, ctf=10**15)
        model.documents_seen = 10**12
        model.tokens_seen = 10**15
        path = tmp_path / "model.lm"
        save_language_model(model, path)
        loaded = load_language_model(path)
        assert loaded.df("common") == 10**12
        assert loaded.ctf("common") == 10**15
        assert loaded.documents_seen == 10**12
        assert loaded.tokens_seen == 10**15

    def test_dumps_loads_matches_file_round_trip(self, tmp_path, model):
        path = tmp_path / "model.lm"
        save_language_model(model, path)
        assert path.read_text(encoding="utf-8") == dumps_language_model(model)
        from_text = loads_language_model(dumps_language_model(model))
        assert dumps_language_model(from_text) == dumps_language_model(model)


class TestCrashSafety:
    """A failed or killed save never corrupts the target path."""

    @pytest.mark.parametrize("bad_term", ["has space", "tab\tterm", ""])
    def test_invalid_term_fails_without_touching_disk(self, tmp_path, bad_term):
        good = LanguageModel(name="good")
        good.add_document(["apple"])
        path = tmp_path / "model.lm"
        save_language_model(good, path)
        original = path.read_text()

        bad = LanguageModel(name="bad")
        bad.add_term("apple", df=1, ctf=1)
        bad._df[bad_term] = 1  # no public API produces such terms
        bad._ctf[bad_term] = 1
        with pytest.raises(ValueError, match="whitespace"):
            save_language_model(bad, path)
        # The previous file is byte-identical; no temp files linger.
        assert path.read_text() == original
        assert sorted(p.name for p in tmp_path.iterdir()) == ["model.lm"]

    def test_kill_during_publish_leaves_old_file(self, tmp_path, model, monkeypatch):
        path = tmp_path / "model.lm"
        save_language_model(model, path)
        original = path.read_bytes()

        def explode(src, dst):
            raise OSError("simulated crash")

        monkeypatch.setattr(os, "replace", explode)
        bigger = model.copy()
        bigger.add_document(["durian"])
        with pytest.raises(OSError, match="simulated crash"):
            save_language_model(bigger, path)
        monkeypatch.undo()
        assert path.read_bytes() == original
        assert sorted(p.name for p in tmp_path.iterdir()) == ["model.lm"]


# Terms must be non-empty and whitespace-free (the serializer's
# documented contract); everything else, including unicode, must survive.
_terms = st.text(min_size=1, max_size=12).filter(
    lambda t: not any(ch.isspace() for ch in t)
)
_counts = st.tuples(
    st.integers(min_value=1, max_value=10**12),
    st.integers(min_value=0, max_value=10**12),
).map(lambda pair: (pair[0], pair[0] + pair[1]))  # df <= ctf, the model invariant
_tables = st.dictionaries(_terms, _counts, max_size=30)


class TestRoundTripProperties:
    @settings(max_examples=60, deadline=None)
    @given(name=st.text(max_size=20), table=_tables)
    def test_any_model_round_trips(self, name, table):
        model = LanguageModel(name=name)
        for term, (df, ctf) in table.items():
            model.add_term(term, df=df, ctf=ctf)
        model.documents_seen = sum(df for df, _ in table.values())
        model.tokens_seen = sum(ctf for _, ctf in table.values())

        loaded = loads_language_model(dumps_language_model(model))
        assert loaded.name == name
        assert set(loaded) == set(model)
        for term in model:
            assert loaded.df(term) == model.df(term)
            assert loaded.ctf(term) == model.ctf(term)
        assert loaded.documents_seen == model.documents_seen
        assert loaded.tokens_seen == model.tokens_seen
        # Serialization is canonical: a round trip is a fixed point.
        assert dumps_language_model(loaded) == dumps_language_model(model)


class TestErrorHandling:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.lm"
        path.write_text("apple 1 2\n")
        with pytest.raises(ValueError, match="header"):
            load_language_model(path)

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.lm"
        path.write_text("#language-model name=x documents_seen=0 tokens_seen=0\napple 1\n")
        with pytest.raises(ValueError, match=":2"):
            load_language_model(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_language_model(tmp_path / "nope.lm")
