"""Property-based tests (hypothesis) for core invariants."""

from __future__ import annotations

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lm import (
    LanguageModel,
    ctf_ratio,
    percentage_learned,
    rdiff,
    spearman_rank_correlation,
)
from repro.lm.compare import rank_terms
from repro.text.stemmer import PorterStemmer
from repro.text.tokenizer import Tokenizer
from repro.utils.zipf import zipf_probabilities

_STEMMER = PorterStemmer()

words = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=12)
documents = st.lists(words, min_size=1, max_size=30)
freq_tables = st.dictionaries(
    words, st.integers(min_value=1, max_value=50), min_size=1, max_size=40
)


def model_from(table: dict[str, int]) -> LanguageModel:
    model = LanguageModel()
    for term, freq in table.items():
        model.add_term(term, df=freq, ctf=freq)
    return model


class TestTokenizerProperties:
    @given(st.text(max_size=300))
    def test_tokens_are_lowercase_alnum(self, text):
        for token in Tokenizer().tokenize(text):
            assert token
            assert token == token.lower()
            assert token.isalnum()

    @given(st.text(max_size=300))
    def test_tokenizing_is_idempotent_on_joined_output(self, text):
        tokens = Tokenizer().tokenize(text)
        assert Tokenizer().tokenize(" ".join(tokens)) == tokens


class TestStemmerProperties:
    @given(words)
    def test_stem_never_longer(self, word):
        assert len(_STEMMER.stem(word)) <= len(word)

    @given(words)
    def test_stem_is_lowercase_nonempty(self, word):
        stemmed = _STEMMER.stem(word)
        assert stemmed
        assert stemmed == stemmed.lower()

    @given(words)
    def test_stem_deterministic(self, word):
        assert _STEMMER.stem(word) == _STEMMER.stem(word)


class TestLanguageModelProperties:
    @given(st.lists(documents, min_size=1, max_size=10))
    def test_counts_match_direct_computation(self, docs):
        model = LanguageModel()
        for doc in docs:
            model.add_document(doc)
        all_tokens = [token for doc in docs for token in doc]
        ctf_expected = Counter(all_tokens)
        df_expected = Counter(token for doc in docs for token in set(doc))
        for term, count in ctf_expected.items():
            assert model.ctf(term) == count
            assert model.df(term) == df_expected[term]
        assert model.tokens_seen == len(all_tokens)
        assert model.documents_seen == len(docs)

    @given(st.lists(documents, min_size=1, max_size=8))
    def test_df_never_exceeds_ctf_or_documents(self, docs):
        model = LanguageModel()
        for doc in docs:
            model.add_document(doc)
        for stats in model.items():
            assert 1 <= stats.df <= stats.ctf
            assert stats.df <= model.documents_seen

    @given(freq_tables, freq_tables)
    def test_merge_is_commutative_on_stats(self, table_a, table_b):
        left = model_from(table_a).merge(model_from(table_b))
        right = model_from(table_b).merge(model_from(table_a))
        assert left.vocabulary == right.vocabulary
        for term in left:
            assert left.df(term) == right.df(term)
            assert left.ctf(term) == right.ctf(term)


class TestMetricProperties:
    @given(freq_tables, freq_tables)
    def test_metric_ranges(self, table_a, table_b):
        learned, actual = model_from(table_a), model_from(table_b)
        assert 0.0 <= percentage_learned(learned, actual) <= 1.0
        assert 0.0 <= ctf_ratio(learned, actual) <= 1.0
        assert -1.0 <= spearman_rank_correlation(learned, actual) <= 1.0 + 1e-9
        assert 0.0 <= rdiff(learned, actual) <= 1.0

    @given(freq_tables)
    def test_self_comparison_is_perfect(self, table):
        model = model_from(table)
        assert percentage_learned(model, model) == 1.0
        assert ctf_ratio(model, model) == 1.0
        assert rdiff(model, model) == 0.0
        # All-tied rankings carry no ordering signal → defined as 0.
        distinct_freqs = len(set(table.values()))
        expected = 0.0 if (len(table) > 1 and distinct_freqs == 1) else 1.0
        assert abs(spearman_rank_correlation(model, model) - expected) < 1e-9

    @given(freq_tables, freq_tables)
    def test_rdiff_symmetric(self, table_a, table_b):
        a, b = model_from(table_a), model_from(table_b)
        assert rdiff(a, b) == rdiff(b, a)

    @given(freq_tables)
    def test_rank_terms_is_permutation_when_ordinal(self, table):
        model = model_from(table)
        terms = sorted(table)
        ranks = rank_terms(model, terms, method="ordinal")
        assert sorted(ranks.tolist()) == list(range(1, len(terms) + 1))

    @given(freq_tables)
    def test_average_ranks_sum_preserved(self, table):
        # Fractional ranking preserves the total sum of ranks 1..n.
        model = model_from(table)
        terms = sorted(table)
        ranks = rank_terms(model, terms, method="average")
        n = len(terms)
        assert np.isclose(ranks.sum(), n * (n + 1) / 2)


class TestZipfProperties:
    @settings(max_examples=25)
    @given(
        st.integers(min_value=1, max_value=5000),
        st.floats(min_value=0.0, max_value=2.5, allow_nan=False),
    )
    def test_probabilities_valid(self, size, exponent):
        probs = zipf_probabilities(size, exponent)
        assert probs.shape == (size,)
        assert np.all(probs > 0)
        assert probs.sum() == np.float64(1.0) or abs(probs.sum() - 1.0) < 1e-9
        assert np.all(np.diff(probs) <= 1e-15)
