"""Statistical tests of the synthetic-corpus knobs.

DESIGN.md's substitution argument claims the generator controls
homogeneity, topical correlation of frequent words, and the alignment
between popular topics and the frequent vocabulary.  These tests verify
each knob does what it claims, directly on the topic-space/document
distributions.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.synth.topics import TopicSpace
from repro.synth.vocabulary import SyntheticVocabulary, VocabularyConfig
from repro.text import Analyzer
from repro.utils.rand import ensure_rng


@pytest.fixture(scope="module")
def vocab() -> SyntheticVocabulary:
    return SyntheticVocabulary(VocabularyConfig(content_size=3000), seed=0)


def _topic_distribution(topic, samples: int, seed: int) -> Counter:
    rng = ensure_rng(seed)
    return Counter(topic.sample(samples, rng).tolist())


def _boost_ids(space: TopicSpace, topic_index: int, topic_vocab_size: int) -> set[int]:
    """Word ids of a topic's boost block.

    The topic's word_ids layout is [stopwords | shared | boost | noise].
    """
    stop_count = len(space.vocabulary.stopwords)
    content_size = len(space.vocabulary.content)
    start = stop_count + content_size
    block = space[topic_index].word_ids[start : start + topic_vocab_size]
    return set(int(w) for w in block)


class TestSharedJitter:
    def test_zero_jitter_topics_agree_on_shared_words(self, vocab):
        space = TopicSpace(vocab, num_topics=2, topic_vocab_size=50,
                           shared_jitter=0.0, seed=1)
        stop_count = len(vocab.stopwords)
        counts_a = _topic_distribution(space[0], 60_000, seed=2)
        counts_b = _topic_distribution(space[1], 60_000, seed=3)
        # Compare relative frequency of frequent shared words (excluding
        # each topic's boost block, whose members differ by design).
        boosted = _boost_ids(space, 0, 50) | _boost_ids(space, 1, 50)
        shared_frequent = [
            word_id
            for word_id, count in counts_a.most_common(300)
            if word_id >= stop_count and word_id not in boosted and counts_b[word_id] > 0
        ][:50]
        ratios = [counts_a[w] / counts_b[w] for w in shared_frequent]
        assert np.std(np.log(ratios)) < 0.4

    def test_jitter_makes_topics_disagree(self, vocab):
        smooth = TopicSpace(vocab, num_topics=2, topic_vocab_size=50,
                            shared_jitter=0.0, seed=1)
        jittered = TopicSpace(vocab, num_topics=2, topic_vocab_size=50,
                              shared_jitter=1.0, seed=1)
        stop_count = len(vocab.stopwords)

        def disagreement(space):
            counts_a = _topic_distribution(space[0], 60_000, seed=2)
            counts_b = _topic_distribution(space[1], 60_000, seed=3)
            boosted = _boost_ids(space, 0, 50) | _boost_ids(space, 1, 50)
            common = [
                word_id
                for word_id, _ in counts_a.most_common(300)
                if word_id >= stop_count
                and word_id not in boosted
                and counts_b[word_id] > 0
            ][:50]
            ratios = [counts_a[w] / counts_b[w] for w in common]
            return float(np.std(np.log(ratios)))

        assert disagreement(jittered) > 2 * disagreement(smooth)

    def test_negative_jitter_rejected(self, vocab):
        with pytest.raises(ValueError):
            TopicSpace(vocab, num_topics=2, shared_jitter=-0.1)


class TestBoostAlignment:
    def test_popular_topics_boost_frequent_words(self, vocab):
        space = TopicSpace(
            vocab, num_topics=6, topic_vocab_size=100, boost_alignment=2.0, seed=4
        )
        stop_count = len(vocab.stopwords)
        # Reconstruct each topic's boost block: its word_ids layout is
        # [stop | shared | boost | noise]; the boost block occupies the
        # slice after stop+shared.
        content_size = len(vocab.content)
        start = stop_count + content_size
        mean_rank = []
        # Invert the shared frequency order: word id → shared rank.
        # (Reach into the construction via a fresh sample: frequent
        # shared words have low ids in the *shared order*, which we
        # approximate by global sampling frequency.)
        global_counts = Counter()
        for topic in space.topics:
            global_counts.update(_topic_distribution(topic, 30_000, seed=5))
        for topic in space.topics:
            boost_ids = topic.word_ids[start : start + 100]
            ranks = [-(global_counts[int(w)]) for w in boost_ids]
            mean_rank.append(float(np.mean(ranks)))
        # Topic 0 boosts globally more frequent words than topic 5.
        assert mean_rank[0] < mean_rank[-1]

    def test_negative_alignment_rejected(self, vocab):
        with pytest.raises(ValueError):
            TopicSpace(vocab, num_topics=2, boost_alignment=-1.0)


class TestProfileHeterogeneity:
    def test_cacm_docs_more_alike_than_trec_docs(self):
        from repro.synth import cacm_like, trec123_like

        analyzer = Analyzer.stopped()

        def mean_pairwise_jaccard(corpus, pairs=200, seed=0):
            rng = ensure_rng(seed)
            term_sets = [set(analyzer.analyze(d.text)) for d in corpus]
            values = []
            for _ in range(pairs):
                i, j = rng.choice(len(term_sets), size=2, replace=False)
                a, b = term_sets[i], term_sets[j]
                if a or b:
                    values.append(len(a & b) / len(a | b))
            return float(np.mean(values))

        cacm = cacm_like().build(seed=5, scale=0.1)
        trec = trec123_like().build(seed=5, scale=0.01)
        # Homogeneous corpora have higher cross-document vocabulary
        # overlap than very heterogeneous ones.
        assert mean_pairwise_jaccard(cacm) > mean_pairwise_jaccard(trec)
