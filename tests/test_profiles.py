"""Unit tests for repro.synth.profiles."""

from __future__ import annotations

import pytest

from repro.synth.profiles import (
    MSSUPPORT_DOMAIN_TERMS,
    cacm_like,
    mssupport_like,
    paper_testbed,
    trec123_like,
    wsj88_like,
)


class TestProfileDefinitions:
    def test_table1_size_ordering(self):
        # CACM < WSJ88 < TREC-123 in documents, as in the paper's Table 1.
        cacm = cacm_like().generator.num_documents
        wsj = wsj88_like().generator.num_documents
        trec = trec123_like().generator.num_documents
        assert cacm < wsj < trec

    def test_cacm_document_count_matches_paper(self):
        assert cacm_like().generator.num_documents == 3204

    def test_variety_labels(self):
        assert cacm_like().variety == "homogeneous"
        assert wsj88_like().variety == "heterogeneous"
        assert trec123_like().variety == "very heterogeneous"

    def test_heterogeneity_increases_with_size(self):
        assert cacm_like().num_topics < wsj88_like().num_topics < trec123_like().num_topics

    def test_vocabulary_grows_with_size(self):
        assert (
            cacm_like().vocabulary.content_size
            < wsj88_like().vocabulary.content_size
            < trec123_like().vocabulary.content_size
        )

    def test_mssupport_has_domain_terms(self):
        profile = mssupport_like()
        assert profile.vocabulary.domain_terms == MSSUPPORT_DOMAIN_TERMS
        assert profile.pinned_front == len(MSSUPPORT_DOMAIN_TERMS)


class TestScaling:
    def test_scale_one_is_identity(self):
        profile = cacm_like()
        assert profile.scaled(1.0) is profile

    def test_scale_down_documents_linear(self):
        scaled = wsj88_like().scaled(0.1)
        assert scaled.generator.num_documents == 1200

    def test_scale_down_vocabulary_sqrt(self):
        base = wsj88_like()
        scaled = base.scaled(0.25)
        assert scaled.vocabulary.content_size == pytest.approx(
            base.vocabulary.content_size * 0.5, rel=0.01
        )

    def test_scale_floor_keeps_topic_vocab_valid(self):
        scaled = trec123_like().scaled(0.0001)
        assert scaled.vocabulary.content_size > scaled.topic_vocab_size

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            cacm_like().scaled(0)


class TestBuild:
    def test_build_small(self):
        corpus = cacm_like().build(seed=0, scale=0.02)
        assert len(corpus) == 64
        assert corpus.name == "cacm"

    def test_build_deterministic(self):
        first = cacm_like().build(seed=5, scale=0.02)
        second = cacm_like().build(seed=5, scale=0.02)
        assert [d.text for d in first] == [d.text for d in second]

    def test_build_seed_changes_content(self):
        first = cacm_like().build(seed=1, scale=0.02)
        second = cacm_like().build(seed=2, scale=0.02)
        assert [d.text for d in first] != [d.text for d in second]

    def test_mssupport_contains_product_terms(self):
        corpus = mssupport_like().build(seed=0, scale=0.05)
        text = " ".join(document.text for document in corpus)
        hits = sum(1 for term in ("microsoft", "excel", "windows") if term in text)
        assert hits == 3

    def test_paper_testbed_keys(self):
        testbed = paper_testbed(seed=0, scale=0.01)
        assert set(testbed) == {"cacm", "wsj88", "trec123"}
