"""Property-based tests for the inverted index and search engine."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import Corpus, Document
from repro.index import InvertedIndex, SearchEngine
from repro.text import Analyzer

words = st.sampled_from(
    ["apple", "banana", "cherry", "date", "fig", "grape", "kiwi", "lemon", "mango"]
)
doc_texts = st.lists(words, min_size=1, max_size=25).map(" ".join)
corpora = st.lists(doc_texts, min_size=1, max_size=12).map(
    lambda texts: Corpus(
        [Document(doc_id=f"d{i}", text=text) for i, text in enumerate(texts)]
    )
)


class TestIndexInvariants:
    @settings(max_examples=40)
    @given(corpora)
    def test_totals_consistent(self, corpus):
        index = InvertedIndex(corpus, Analyzer.raw())
        ctf_total = sum(index.ctf(term) for term in index.vocabulary)
        assert ctf_total == index.total_terms
        assert int(index.doc_lengths.sum()) == index.total_terms

    @settings(max_examples=40)
    @given(corpora)
    def test_df_bounds(self, corpus):
        index = InvertedIndex(corpus, Analyzer.raw())
        for term in index.vocabulary:
            assert 1 <= index.df(term) <= index.num_documents
            assert index.df(term) <= index.ctf(term)

    @settings(max_examples=40)
    @given(corpora)
    def test_postings_sorted_and_positive(self, corpus):
        index = InvertedIndex(corpus, Analyzer.raw())
        for term in index.vocabulary:
            posting = index.postings(term)
            assert posting is not None
            assert np.all(np.diff(posting.doc_indices) > 0)
            assert np.all(posting.term_frequencies >= 1)

    @settings(max_examples=40)
    @given(corpora)
    def test_language_model_matches_index(self, corpus):
        index = InvertedIndex(corpus, Analyzer.raw())
        model = index.language_model()
        assert len(model) == index.vocabulary_size
        assert model.total_ctf == index.total_terms


class TestSearchInvariants:
    @settings(max_examples=30)
    @given(corpora, words, st.integers(min_value=1, max_value=10))
    def test_results_contain_query_term(self, corpus, term, n):
        engine = SearchEngine(InvertedIndex(corpus, Analyzer.raw()))
        for result in engine.search(term, n=n):
            document = corpus.get(result.doc_id)
            assert term in document.text.split()

    @settings(max_examples=30)
    @given(corpora, words)
    def test_result_count_is_min_of_n_and_df(self, corpus, term):
        index = InvertedIndex(corpus, Analyzer.raw())
        engine = SearchEngine(index)
        results = engine.search(term, n=5)
        assert len(results) == min(5, index.df(term))

    @settings(max_examples=30)
    @given(corpora, words)
    def test_scores_monotone_nonincreasing(self, corpus, term):
        engine = SearchEngine(InvertedIndex(corpus, Analyzer.raw()))
        scores = [result.score for result in engine.search(term, n=10)]
        assert scores == sorted(scores, reverse=True)

    @settings(max_examples=30)
    @given(corpora, words)
    def test_no_duplicate_documents_in_results(self, corpus, term):
        engine = SearchEngine(InvertedIndex(corpus, Analyzer.raw()))
        results = engine.search(term, n=10)
        doc_ids = [result.doc_id for result in results]
        assert len(doc_ids) == len(set(doc_ids))

    @settings(max_examples=20)
    @given(corpora, st.lists(words, min_size=2, max_size=3))
    def test_multi_term_results_match_some_term(self, corpus, terms):
        engine = SearchEngine(InvertedIndex(corpus, Analyzer.raw()))
        query = " ".join(terms)
        for result in engine.search(query, n=10):
            text_terms = set(corpus.get(result.doc_id).text.split())
            assert text_terms & set(terms)
