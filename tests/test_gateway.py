"""Unit tests for repro.gateway (protocol, server, client, loadgen)."""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.federation import SearchRequest, build_skewed_partition
from repro.federation.service import FederatedResponse
from repro.dbselect.base import DatabaseRanking, RankedDatabase
from repro.dbselect.merge import MergedResult
from repro.gateway import (
    GatewayClient,
    GatewayError,
    GatewayServer,
    LoadBenchReport,
    format_load_bench,
    frontend_from_servers,
    run_load_bench,
    write_load_bench,
)
from repro.gateway.loadgen import LOAD_BENCH_SCHEMA, saturation_qps
from repro.gateway.protocol import (
    PROTOCOL,
    PROTOCOL_VERSION,
    ErrorFrame,
    Hello,
    Overload,
    PartialResults,
    ProtocolError,
    RequestFrame,
    ResponseFrame,
    decode_frame,
    encode_frame,
)
from repro.index import DatabaseServer
from repro.serving import LatencyInjected
from repro.synth import wsj88_like


@pytest.fixture(scope="module")
def servers() -> dict[str, DatabaseServer]:
    corpus = wsj88_like().build(seed=11, scale=0.04)
    parts = build_skewed_partition(corpus, num_databases=3, seed=7)
    return {part.name: DatabaseServer(part) for part in parts}


@pytest.fixture(scope="module")
def models(servers):
    return {name: server.actual_language_model() for name, server in servers.items()}


@pytest.fixture(scope="module")
def queries(models) -> list[str]:
    from repro.serving import queries_from_models

    return queries_from_models(models, 6)


def slowed_federation(servers, delay: float, which: str | None = None):
    """Copy of ``servers`` with one (or every) backend latency-injected."""
    slowed = dict(servers)
    if which is None:
        for name in slowed:
            slowed[name] = LatencyInjected(servers[name], delay=delay)
    else:
        slowed[which] = LatencyInjected(servers[which], delay=delay)
    return slowed


class TestProtocol:
    def sample_response(self) -> FederatedResponse:
        ranking = DatabaseRanking(
            query="market",
            entries=(
                RankedDatabase(name="db-a", score=0.8),
                RankedDatabase(name="db-b", score=0.3),
            ),
        )
        return FederatedResponse(
            query="market",
            ranking=ranking,
            searched=("db-a", "db-b"),
            results=(
                MergedResult(doc_id="d1", database="db-a", score=2.5),
                MergedResult(doc_id="d2", database="db-b", score=1.25),
            ),
            dropped=("db-c",),
            timings={"db-a": 0.01, "db-b": 0.02},
        )

    @pytest.mark.parametrize(
        "frame",
        [
            Hello(protocol=PROTOCOL, databases=3),
            RequestFrame(
                request_id="r1",
                request=SearchRequest(
                    query="oil market", n=5, docs_per_database=7,
                    deadline=0.25, databases_per_query=2,
                ),
            ),
            PartialResults(
                request_id="r2",
                sequence=1,
                results=(MergedResult(doc_id="d9", database="db-a", score=3.0),),
                searched=("db-a",),
                pending=("db-b", "db-c"),
            ),
            Overload(
                request_id="r3", reason="queue_full",
                queue_depth=4, capacity=4, retry_after=0.05,
            ),
            ErrorFrame(request_id="r4", code="TypeError", message="boom"),
        ],
    )
    def test_round_trip(self, frame):
        assert decode_frame(encode_frame(frame)) == frame

    def test_response_round_trip(self):
        frame = ResponseFrame(request_id="r5", response=self.sample_response())
        assert decode_frame(encode_frame(frame)) == frame

    def test_routing_request_round_trip(self):
        from repro.classify import RequestRouting

        frame = RequestFrame(
            request_id="r6",
            request=SearchRequest(
                query="oil market",
                routing=RequestRouting(topics=("energy",), min_confidence=0.5),
            ),
        )
        assert decode_frame(encode_frame(frame)) == frame

    def test_routing_response_round_trip(self):
        from dataclasses import replace

        from repro.classify import RoutingDecision

        response = replace(
            self.sample_response(),
            routing=RoutingDecision(
                mode="routed",
                topics=("energy",),
                confidence=0.8,
                candidates=2,
            ),
        )
        frame = ResponseFrame(request_id="r7", response=response)
        assert decode_frame(encode_frame(frame)) == frame

    def test_routing_absent_keeps_wire_format_unchanged(self):
        # Old clients must see byte-identical frames: a request or
        # response without routing carries no "routing" key at all.
        request_line = encode_frame(
            RequestFrame(request_id="r8", request=SearchRequest(query="x"))
        )
        assert b"routing" not in request_line
        response_line = encode_frame(
            ResponseFrame(request_id="r9", response=self.sample_response())
        )
        assert b"routing" not in response_line

    def test_malformed_routing_rejected(self):
        line = (
            b'{"v": 1, "type": "request", "id": "r1", '
            b'"request": {"query": "x", "routing": "energy"}}\n'
        )
        with pytest.raises(ProtocolError, match="routing"):
            decode_frame(line)

    def test_frames_are_json_lines(self):
        line = encode_frame(Hello(protocol=PROTOCOL, databases=2))
        assert line.endswith(b"\n")
        row = json.loads(line)
        assert row["v"] == PROTOCOL_VERSION
        assert row["type"] == "hello"

    @pytest.mark.parametrize(
        "line, match",
        [
            (b"not json\n", "not valid JSON"),
            (b"[1, 2]\n", "JSON object"),
            (b'{"v": 99, "type": "hello"}\n', "version"),
            (b'{"v": 1, "type": "telepathy", "id": "r1"}\n', "unknown frame type"),
            (b'{"v": 1, "type": "partial"}\n', "missing its request id"),
            (b'{"v": 1, "type": "request", "id": "r1"}\n', "request payload"),
            (
                b'{"v": 1, "type": "request", "id": "r1", "request": {"query": "x", "n": 0}}\n',
                "invalid request payload",
            ),
            (b'{"v": 1, "type": "response", "id": "r1"}\n', "response payload"),
        ],
    )
    def test_malformed_frames_rejected(self, line, match):
        with pytest.raises(ProtocolError, match=match):
            decode_frame(line)


class TestGatewayEndToEnd:
    """Server + client over a real localhost socket."""

    def test_search_round_trip_matches_direct(self, servers, queries):
        async def run():
            with frontend_from_servers(servers) as frontend:
                direct = frontend.search(SearchRequest(query=queries[0], n=5))
                async with GatewayServer(frontend) as server:
                    host, port = server.address
                    async with GatewayClient(host, port) as client:
                        assert client.databases == len(servers)
                        reply = await client.search(SearchRequest(query=queries[0], n=5))
            return direct, reply

        direct, reply = asyncio.run(run())
        assert reply.ok and reply.response is not None
        assert reply.response.query == direct.query
        assert reply.response.searched == direct.searched
        assert [r.doc_id for r in reply.response.results] == [
            r.doc_id for r in direct.results
        ]

    def test_streaming_first_partial_beats_full_response(self, servers, models, queries):
        slow_name = sorted(servers)[0]
        slowed = slowed_federation(servers, delay=0.3, which=slow_name)

        async def run():
            with frontend_from_servers(slowed, models=models) as frontend:
                async with GatewayServer(frontend) as server:
                    async with GatewayClient(*server.address) as client:
                        reply = await client.search(SearchRequest(query=queries[0]))
                    return reply, server.stats.streamed_partials

        reply, streamed = asyncio.run(run())
        assert reply.ok
        assert reply.partials, "fast backends should have streamed a partial"
        assert streamed >= len(reply.partials) > 0
        # The acceptance criterion: first hits land well before the
        # slow backend lets the final response finish.
        assert reply.elapsed >= 0.28
        assert reply.first_partial_after is not None
        assert reply.first_partial_after < reply.elapsed / 2
        first = reply.partials[0]
        assert first.sequence == 1
        assert slow_name in first.pending
        assert slow_name not in first.searched

    def test_deadline_propagates_to_fanout(self, servers, models, queries):
        slow_name = sorted(servers)[0]
        slowed = slowed_federation(servers, delay=0.6, which=slow_name)

        async def run():
            with frontend_from_servers(slowed, models=models) as frontend:
                async with GatewayServer(frontend) as server:
                    async with GatewayClient(*server.address) as client:
                        started = time.perf_counter()
                        reply = await client.search(
                            SearchRequest(query=queries[0], deadline=0.15)
                        )
                        return reply, time.perf_counter() - started

        reply, elapsed = asyncio.run(run())
        assert reply.ok and reply.response is not None
        assert slow_name in reply.response.dropped
        assert elapsed < 0.55  # did not wait out the slow backend

    def test_overload_sheds_then_recovers(self, servers, models, queries):
        slowed = slowed_federation(servers, delay=0.1)

        async def run():
            with frontend_from_servers(slowed, models=models) as frontend:
                server = GatewayServer(frontend, queue_limit=1, concurrency=1)
                async with server:
                    async with GatewayClient(*server.address, pool_size=1) as client:
                        replies = await asyncio.gather(
                            *(
                                client.search(SearchRequest(query=queries[i % len(queries)]))
                                for i in range(10)
                            )
                        )
                        # The queue has drained: the gateway accepts again.
                        after = await client.search(SearchRequest(query=queries[0]))
                    return replies, after, server.stats

        replies, after, stats = asyncio.run(run())
        shed = [r for r in replies if r.status == "overload"]
        served = [r for r in replies if r.ok]
        assert shed, "flooding a queue of 1 must shed"
        assert served, "the gateway still serves while shedding"
        assert all(r.overload.reason == "queue_full" for r in shed)
        assert all(r.overload.capacity == 1 for r in shed)
        assert all(r.overload.retry_after > 0 for r in shed)
        # Bounded admission, observable: the high-water mark never
        # exceeds the configured limit no matter the offered burst.
        assert stats.max_queue_depth <= 1
        assert stats.shed_queue_full == len(shed)
        assert after.ok, "once drained, requests are accepted again"

    def test_queue_wait_consumes_deadline(self, servers, models, queries):
        slowed = slowed_federation(servers, delay=0.25)

        async def run():
            with frontend_from_servers(slowed, models=models) as frontend:
                server = GatewayServer(frontend, queue_limit=4, concurrency=1)
                async with server:
                    async with GatewayClient(*server.address, pool_size=1) as client:
                        blocker = asyncio.create_task(
                            client.search(SearchRequest(query=queries[0]))
                        )
                        await asyncio.sleep(0.02)  # let the blocker occupy the worker
                        starved = await client.search(
                            SearchRequest(query=queries[1], deadline=0.05)
                        )
                        await blocker
                    return starved, server.stats

        starved, stats = asyncio.run(run())
        assert starved.status == "overload"
        assert starved.overload.reason == "deadline_expired"
        assert stats.shed_deadline >= 1

    def test_protocol_error_gets_error_frame(self, servers):
        async def run():
            with frontend_from_servers(servers) as frontend:
                async with GatewayServer(frontend) as server:
                    reader, writer = await asyncio.open_connection(*server.address)
                    await reader.readline()  # hello banner
                    writer.write(b"this is not a frame\n")
                    await writer.drain()
                    reply = decode_frame(await reader.readline())
                    writer.close()
                    await writer.wait_closed()
                    return reply, server.stats.errors

        reply, errors = asyncio.run(run())
        assert isinstance(reply, ErrorFrame)
        assert reply.code == "protocol"
        assert errors >= 1

    def test_client_rejects_wrong_banner(self):
        async def run():
            async def impostor(reader, writer):
                writer.write(b'{"v": 1, "type": "hello", "protocol": "imap/4"}\n')
                await writer.drain()

            server = await asyncio.start_server(impostor, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                with pytest.raises(GatewayError, match="imap/4"):
                    async with GatewayClient("127.0.0.1", port):
                        pass
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(run())

    def test_client_connect_refused(self):
        async def run():
            with pytest.raises(GatewayError, match="cannot connect"):
                async with GatewayClient("127.0.0.1", 1):  # nothing listens there
                    pass

        asyncio.run(run())

    def test_server_validates_configuration(self, servers):
        with frontend_from_servers(servers) as frontend:
            with pytest.raises(ValueError, match="queue_limit"):
                GatewayServer(frontend, queue_limit=0)
            with pytest.raises(ValueError, match="concurrency"):
                GatewayServer(frontend, concurrency=0)
        with pytest.raises(ValueError, match="pool_size"):
            GatewayClient("127.0.0.1", 9, pool_size=0)


class TestFrontendFromServers:
    def test_rejects_non_evaluable_without_models(self, servers):
        class QueryOnly:
            def __init__(self, inner):
                self._inner = inner

            def run_query(self, query, max_docs=10):
                return self._inner.run_query(query, max_docs=max_docs)

        wrapped = {name: QueryOnly(server) for name, server in servers.items()}
        with pytest.raises(TypeError, match="not evaluable"):
            frontend_from_servers(wrapped)

    def test_explicit_models_bypass_evaluability(self, servers):
        models = {
            name: server.actual_language_model() for name, server in servers.items()
        }
        wrapped = {
            name: LatencyInjected(server, delay=0.0) for name, server in servers.items()
        }
        with frontend_from_servers(wrapped, models=models) as frontend:
            assert frontend.search(SearchRequest(query="the market")).results is not None


class TestLoadBench:
    def test_self_hosted_sweep_reports_and_writes(self, servers, queries, tmp_path):
        with frontend_from_servers(servers) as frontend:
            report = run_load_bench(
                frontend=frontend,
                queries=queries,
                qps_levels=(25.0,),
                duration=0.4,
                pool_size=2,
                queue_limit=16,
                concurrency=4,
                seed=3,
            )
        assert isinstance(report, LoadBenchReport)
        (level,) = report.levels
        assert level.sent > 0
        assert level.completed > 0
        assert level.completed + level.shed + level.errors == level.sent
        for key in ("p50", "p95", "p99", "mean", "count"):
            assert key in level.latency
        assert level.latency["p50"] <= level.latency["p95"] <= level.latency["p99"]
        assert report.gateway is not None
        assert report.gateway.max_queue_depth <= 16

        path = tmp_path / "BENCH_serving_load.json"
        write_load_bench(report, str(path))
        payload = json.loads(path.read_text())
        assert payload["schema"] == LOAD_BENCH_SCHEMA
        assert payload["saturation_qps"] == pytest.approx(report.saturation_qps, abs=0.01)
        row = payload["levels"][0]
        for key in ("p50", "p95", "p99"):
            assert row["latency_ms"][key] >= 0.0
        assert "shed_rate" in row
        assert payload["gateway"]["max_queue_depth"] <= 16

        rendered = format_load_bench(report)
        assert "saturation QPS" in rendered
        assert "p99_ms" in rendered

    def test_overload_sheds_bounded_not_collapse(self, servers, models, queries):
        """At far-beyond-saturation offered load the gateway sheds, keeps
        the queue bounded, and still serves cleanly at low rates."""
        slowed = slowed_federation(servers, delay=0.05)
        with frontend_from_servers(slowed, models=models) as frontend:
            report = run_load_bench(
                frontend=frontend,
                queries=queries,
                qps_levels=(5.0, 200.0),
                duration=0.6,
                pool_size=2,
                queue_limit=4,
                concurrency=2,
                seed=5,
            )
        calm, storm = report.levels
        assert calm.shed == 0
        assert storm.shed > 0
        assert storm.shed_rate > 0.2
        # Saturation sits at (or above) the clean level's throughput.
        assert report.saturation_qps >= calm.achieved_qps
        # Bounded admission: depth never exceeded the limit, and served
        # latency stayed bounded (queue x service, not offered-rate x).
        assert report.gateway is not None
        assert report.gateway.max_queue_depth <= 4
        assert storm.latency["p99"] < 2.0

    def test_saturation_qps_picks_cleanly_served_ceiling(self):
        def level(qps, achieved, sent, shed):
            from repro.gateway.loadgen import LevelResult
            from repro.utils.stats import latency_summary

            return LevelResult(
                offered_qps=qps, duration=1.0, sent=sent,
                completed=sent - shed, shed=shed, errors=0,
                achieved_qps=achieved, shed_rate=shed / sent,
                latency=latency_summary([0.01]),
                time_to_first_partial=latency_summary([]),
            )

        levels = [
            level(10.0, 9.8, 10, 0),
            level(20.0, 19.5, 20, 0),
            level(40.0, 22.0, 40, 18),
        ]
        assert saturation_qps(levels) == 19.5
        assert saturation_qps([level(40.0, 22.0, 40, 18)]) == 0.0

    def test_run_load_bench_validates_inputs(self, servers, queries):
        with pytest.raises(ValueError, match="exactly one"):
            run_load_bench()
        with pytest.raises(ValueError, match="exactly one"):
            with frontend_from_servers(servers) as frontend:
                run_load_bench(
                    address=("127.0.0.1", 1), frontend=frontend, queries=queries
                )
        with pytest.raises(ValueError, match="queries are required"):
            run_load_bench(address=("127.0.0.1", 1))
        with pytest.raises(ValueError, match="positive rates"):
            run_load_bench(address=("127.0.0.1", 1), queries=queries, qps_levels=())
        with pytest.raises(ValueError, match="duration"):
            run_load_bench(
                address=("127.0.0.1", 1), queries=queries, duration=0.0
            )
