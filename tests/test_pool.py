"""Unit tests for repro.sampling.pool and sampler resumability."""

from __future__ import annotations

import pytest

from repro.corpus import Corpus, Document, partition_round_robin
from repro.index import DatabaseServer
from repro.sampling import (
    CircuitBreaker,
    ListBootstrap,
    MaxDocuments,
    PermanentServerError,
    QueryBasedSampler,
    RandomFromOther,
    ResilientDatabase,
    SamplerConfig,
    SamplingPool,
)
from repro.synth import cacm_like


@pytest.fixture(scope="module")
def federation() -> dict[str, DatabaseServer]:
    corpus = cacm_like().build(seed=21, scale=0.3)
    parts = partition_round_robin(corpus, 3)
    return {part.name: DatabaseServer(part) for part in parts}


def bootstrap_factory(servers):
    return lambda name: RandomFromOther(servers[name].actual_language_model())


class TestResumableSampler:
    def test_resume_equivalent_to_one_shot(self, small_synthetic_server):
        boot = RandomFromOther(small_synthetic_server.actual_language_model())
        stepped = QueryBasedSampler(small_synthetic_server, bootstrap=boot, seed=7)
        stepped.run(MaxDocuments(60))
        resumed = stepped.run(MaxDocuments(140))
        oneshot = QueryBasedSampler(small_synthetic_server, bootstrap=boot, seed=7).run(
            MaxDocuments(140)
        )
        assert resumed.documents_examined == oneshot.documents_examined == 140
        assert resumed.model.vocabulary == oneshot.model.vocabulary
        assert resumed.query_terms == oneshot.query_terms

    def test_run_with_satisfied_criterion_is_noop(self, small_synthetic_server):
        boot = RandomFromOther(small_synthetic_server.actual_language_model())
        sampler = QueryBasedSampler(small_synthetic_server, bootstrap=boot, seed=7)
        sampler.run(MaxDocuments(40))
        queries_before = sampler.queries_run
        again = sampler.run(MaxDocuments(40))
        assert sampler.queries_run == queries_before
        assert again.documents_examined == 40

    def test_progress_properties(self, small_synthetic_server):
        boot = RandomFromOther(small_synthetic_server.actual_language_model())
        sampler = QueryBasedSampler(small_synthetic_server, bootstrap=boot, seed=9)
        assert sampler.documents_examined == 0
        sampler.run(MaxDocuments(50))
        assert sampler.documents_examined == 50
        assert sampler.queries_run > 0
        assert len(sampler.model) > 0

    def test_last_rdiff_needs_two_snapshots(self, small_synthetic_server):
        boot = RandomFromOther(small_synthetic_server.actual_language_model())
        sampler = QueryBasedSampler(
            small_synthetic_server,
            bootstrap=boot,
            config=SamplerConfig(snapshot_interval=25),
            seed=9,
        )
        assert sampler.last_rdiff() is None
        sampler.run(MaxDocuments(25))
        assert sampler.last_rdiff() is None
        sampler.run(MaxDocuments(50))
        value = sampler.last_rdiff()
        assert value is not None and 0.0 <= value <= 1.0

    @pytest.mark.parametrize(
        "config,budgets",
        [
            # Paper-default config, snapshot-aligned budgets.
            (SamplerConfig(), (100, 200)),
            # Budgets that fire mid-query (not multiples of docs_per_query),
            # so the stepped run carries a pending tail across run() calls.
            (SamplerConfig(docs_per_query=8, snapshot_interval=10), (9, 30)),
            (SamplerConfig(docs_per_query=6, snapshot_interval=25), (47, 143)),
        ],
    )
    def test_stepped_equals_one_shot_exactly(
        self, small_synthetic_server, config, budgets
    ):
        """Stepped runs must be indistinguishable from one-shot runs:
        same model, same query records, and the same (documents, queries)
        snapshot pairs — including when a budget fires mid-query."""
        boot = RandomFromOther(small_synthetic_server.actual_language_model())
        first_budget, final_budget = budgets

        stepped_sampler = QueryBasedSampler(
            small_synthetic_server, bootstrap=boot, config=config, seed=17
        )
        stepped_sampler.run(MaxDocuments(first_budget))
        stepped = stepped_sampler.run(MaxDocuments(final_budget))
        oneshot = QueryBasedSampler(
            small_synthetic_server, bootstrap=boot, config=config, seed=17
        ).run(MaxDocuments(final_budget))

        assert stepped.documents_examined == oneshot.documents_examined == final_budget
        assert stepped.model.vocabulary == oneshot.model.vocabulary
        assert stepped.queries == oneshot.queries
        stepped_pairs = [(s.documents_examined, s.queries_run) for s in stepped.snapshots]
        oneshot_pairs = [(s.documents_examined, s.queries_run) for s in oneshot.snapshots]
        # The stepped run may take one extra end-of-run snapshot at the
        # intermediate budget; every other (documents, queries) pair —
        # in particular queries_run, which used to be off by one when a
        # pending tail crossed a snapshot boundary — must be identical.
        extra = [pair for pair in stepped_pairs if pair not in oneshot_pairs]
        assert all(pair[0] == first_budget for pair in extra), extra
        assert [pair for pair in stepped_pairs if pair in oneshot_pairs] == oneshot_pairs

    def test_exhausted_sampler_stays_exhausted(self):
        corpus = Corpus([Document(doc_id="only", text="solo document here")])
        server = DatabaseServer(corpus)
        sampler = QueryBasedSampler(
            server, bootstrap=ListBootstrap(["solo", "document"]), seed=1
        )
        first = sampler.run(MaxDocuments(10))
        assert first.stop_reason == "vocabulary_exhausted"
        second = sampler.run(MaxDocuments(10))
        assert second.stop_reason == "vocabulary_exhausted"
        assert second.queries_run == first.queries_run


class TestSamplingPool:
    def test_uniform_split(self, federation):
        pool = SamplingPool(federation, bootstrap_factory(federation), scheduler="uniform")
        result = pool.run(150)
        assert result.total_documents == 150
        for run in result.runs.values():
            assert run.documents_examined == 50

    def test_round_robin_budget_exact(self, federation):
        pool = SamplingPool(
            federation, bootstrap_factory(federation), scheduler="round_robin", increment=25
        )
        result = pool.run(200)
        assert result.total_documents == 200
        # Allocation spread is at most one increment.
        counts = [run.documents_examined for run in result.runs.values()]
        assert max(counts) - min(counts) <= 25

    def test_convergence_covers_every_database(self, federation):
        pool = SamplingPool(
            federation, bootstrap_factory(federation), scheduler="convergence", increment=50
        )
        result = pool.run(450)
        assert result.total_documents == 450
        assert all(run.documents_examined > 0 for run in result.runs.values())

    def test_models_property(self, federation):
        pool = SamplingPool(federation, bootstrap_factory(federation))
        result = pool.run(90)
        assert set(result.models) == set(federation)
        assert all(len(model) > 0 for model in result.models.values())

    def test_exhaustion_releases_budget(self):
        # One tiny database (8 docs) and one normal one: the tiny one
        # exhausts and the rest of the budget flows to the other.
        tiny = Corpus(
            [Document(doc_id=f"t{i}", text=f"unique{i} shared words here") for i in range(8)],
            name="tinydb",
        )
        big = cacm_like().build(seed=33, scale=0.1)
        servers = {"tinydb": DatabaseServer(tiny), "bigdb": DatabaseServer(big)}
        pool = SamplingPool(
            servers,
            bootstrap_factory(servers),
            scheduler="round_robin",
            increment=20,
        )
        result = pool.run(120)
        assert result.runs["tinydb"].documents_examined <= 8
        assert result.runs["bigdb"].documents_examined >= 100

    @pytest.mark.parametrize("scheduler", ["uniform", "round_robin", "convergence"])
    @pytest.mark.parametrize("total", [2, 100, 151])
    def test_budget_exact_for_every_scheduler(self, federation, scheduler, total):
        """Every scheduler must sample exactly the requested total —
        never the remainder-truncated count (100 over 3 databases is
        34+33+33, not 99) and never an overshoot (2 over 3 is 2)."""
        pool = SamplingPool(
            federation, bootstrap_factory(federation), scheduler=scheduler, increment=25
        )
        result = pool.run(total)
        assert result.total_documents == total

    def test_uniform_remainder_spread(self, federation):
        pool = SamplingPool(federation, bootstrap_factory(federation), scheduler="uniform")
        result = pool.run(100)
        counts = sorted(
            (run.documents_examined for run in result.runs.values()), reverse=True
        )
        assert counts == [34, 33, 33]

    def test_uniform_budget_smaller_than_pool(self, federation):
        pool = SamplingPool(federation, bootstrap_factory(federation), scheduler="uniform")
        result = pool.run(2)
        counts = [run.documents_examined for run in result.runs.values()]
        assert sum(counts) == 2
        assert max(counts) == 1  # one document each, nobody overshoots
        assert sum(1 for run in result.runs.values() if run.stop_reason == "not_scheduled") == 1

    def test_uniform_reallocates_exhausted_share(self):
        tiny = Corpus(
            [Document(doc_id=f"t{i}", text=f"unique{i} shared words here") for i in range(8)],
            name="tinydb",
        )
        big = cacm_like().build(seed=33, scale=0.1)
        servers = {"tinydb": DatabaseServer(tiny), "bigdb": DatabaseServer(big)}
        pool = SamplingPool(servers, bootstrap_factory(servers), scheduler="uniform")
        result = pool.run(120)
        # The tiny database exhausts at 8; its unspent share flows on.
        assert result.runs["tinydb"].documents_examined <= 8
        assert result.total_documents == 120

    @pytest.mark.parametrize("scheduler", ["uniform", "round_robin", "convergence"])
    def test_unreachable_database_budget_reallocated(self, scheduler):
        parts = partition_round_robin(cacm_like().build(seed=29, scale=0.2), 2)
        servers = {part.name: DatabaseServer(part) for part in parts}
        names = list(servers)
        dead_name, alive_name = names[0], names[1]

        class DeadDatabase:
            """Permanently failing remote endpoint."""

            name = dead_name

            def run_query(self, query, max_docs=10):
                raise PermanentServerError("endpoint gone")

        databases = {
            dead_name: ResilientDatabase(
                DeadDatabase(), breaker=CircuitBreaker(failure_threshold=2, cooldown=1e9)
            ),
            alive_name: servers[alive_name],
        }
        pool = SamplingPool(
            databases, bootstrap_factory(servers), scheduler=scheduler, increment=25
        )
        result = pool.run(100)
        assert result.runs[dead_name].stop_reason == "database_unreachable"
        assert result.runs[dead_name].documents_examined == 0
        # The unreachable database's budget flowed to the healthy one.
        assert result.runs[alive_name].documents_examined == 100

    def test_validation(self, federation):
        with pytest.raises(ValueError):
            SamplingPool({}, bootstrap_factory(federation))
        with pytest.raises(ValueError):
            SamplingPool(federation, bootstrap_factory(federation), scheduler="magic")
        with pytest.raises(ValueError):
            SamplingPool(federation, bootstrap_factory(federation), increment=0)
        pool = SamplingPool(federation, bootstrap_factory(federation))
        with pytest.raises(ValueError):
            pool.run(0)
