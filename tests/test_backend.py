"""Unit tests for the repro.backend protocol layer."""

from __future__ import annotations

import pytest

from repro.backend import (
    CooperativeDatabase,
    EvaluableDatabase,
    HitCountingDatabase,
    RetrievableDatabase,
    SearchableDatabase,
    backend_capabilities,
    missing_capabilities,
    require_searchable,
)
from repro.corpus import Document
from repro.sampling.transport import ResilientDatabase, UnreliableServer
from repro.starts.servers import HonestServer, UncooperativeServer


class QueryOnly:
    """The narrowest conceivable backend: run_query and nothing else."""

    def run_query(self, query: str, max_docs: int = 10) -> list[Document]:
        return []


class NotADatabase:
    pass


class TestProtocolConformance:
    def test_database_server_satisfies_every_tier(self, tiny_server):
        assert isinstance(tiny_server, SearchableDatabase)
        assert isinstance(tiny_server, HitCountingDatabase)
        assert isinstance(tiny_server, RetrievableDatabase)
        assert isinstance(tiny_server, EvaluableDatabase)

    def test_database_server_is_not_cooperative(self, tiny_server):
        # STARTS exports come from the wrappers in repro.starts.servers,
        # not from the raw server.
        assert not isinstance(tiny_server, CooperativeDatabase)

    def test_starts_wrappers_are_cooperative(self, tiny_server):
        assert isinstance(HonestServer(tiny_server), CooperativeDatabase)
        # Even a server that *refuses* satisfies the protocol — refusal
        # is a runtime behaviour, not a missing member.
        assert isinstance(UncooperativeServer(tiny_server), CooperativeDatabase)

    def test_transport_wrappers_stay_searchable(self, tiny_server):
        wrapped = ResilientDatabase(UnreliableServer(tiny_server, transient_rate=0.5))
        assert isinstance(wrapped, SearchableDatabase)
        # The wrapper hides ground truth and the engine: it is *only*
        # the paper's minimal query surface.
        assert not isinstance(wrapped, EvaluableDatabase)
        assert not isinstance(wrapped, RetrievableDatabase)

    def test_minimal_object_is_searchable(self):
        assert isinstance(QueryOnly(), SearchableDatabase)

    def test_non_database_is_nothing(self):
        assert not isinstance(NotADatabase(), SearchableDatabase)


class TestCapabilityHelpers:
    def test_backend_capabilities_full_server(self, tiny_server):
        assert backend_capabilities(tiny_server) == (
            "searchable",
            "hit_counting",
            "retrievable",
            "evaluable",
        )

    def test_backend_capabilities_minimal(self):
        assert backend_capabilities(QueryOnly()) == ("searchable",)

    def test_backend_capabilities_none(self):
        assert backend_capabilities(NotADatabase()) == ()

    def test_missing_capabilities_names_members(self):
        assert missing_capabilities(NotADatabase(), SearchableDatabase) == ["run_query"]
        assert missing_capabilities(QueryOnly(), CooperativeDatabase) == ["starts_export"]
        assert missing_capabilities(QueryOnly(), EvaluableDatabase) == [
            "actual_language_model",
            "num_documents",
        ]

    def test_missing_capabilities_empty_when_conforming(self, tiny_server):
        assert missing_capabilities(tiny_server, EvaluableDatabase) == []

    def test_missing_capabilities_rejects_foreign_types(self):
        with pytest.raises(TypeError, match="not a backend protocol"):
            missing_capabilities(QueryOnly(), dict)


class TestRequireSearchable:
    def test_returns_conforming_object(self, tiny_server):
        assert require_searchable(tiny_server) is tiny_server

    def test_raises_naming_offender_and_member(self):
        with pytest.raises(TypeError) as excinfo:
            require_searchable(NotADatabase(), name="acm")
        message = str(excinfo.value)
        assert "'acm'" in message
        assert "NotADatabase" in message
        assert "run_query" in message

    def test_label_falls_back_to_type_name(self):
        with pytest.raises(TypeError, match="NotADatabase"):
            require_searchable(NotADatabase())
