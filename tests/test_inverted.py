"""Unit tests for repro.index.inverted."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus import Corpus, Document
from repro.index import InvertedIndex
from repro.text import Analyzer


@pytest.fixture(scope="module")
def raw_index() -> InvertedIndex:
    corpus = Corpus(
        [
            Document(doc_id="d1", text="apple apple banana"),
            Document(doc_id="d2", text="banana cherry"),
            Document(doc_id="d3", text="apple cherry cherry cherry"),
        ],
        name="fruit",
    )
    return InvertedIndex(corpus, Analyzer.raw())


class TestPostings:
    def test_df(self, raw_index):
        assert raw_index.df("apple") == 2
        assert raw_index.df("banana") == 2
        assert raw_index.df("cherry") == 2

    def test_ctf(self, raw_index):
        assert raw_index.ctf("apple") == 3
        assert raw_index.ctf("cherry") == 4

    def test_absent_term(self, raw_index):
        assert raw_index.df("durian") == 0
        assert raw_index.ctf("durian") == 0
        assert raw_index.postings("durian") is None
        assert "durian" not in raw_index

    def test_posting_list_contents(self, raw_index):
        posting = raw_index.postings("apple")
        assert posting is not None
        assert posting.doc_indices.tolist() == [0, 2]
        assert posting.term_frequencies.tolist() == [2, 1]
        assert len(posting) == 2

    def test_posting_parallel_arrays_enforced(self):
        from repro.index.inverted import PostingList

        with pytest.raises(ValueError):
            PostingList(np.arange(3), np.arange(4))


class TestIndexStatistics:
    def test_vocabulary_size(self, raw_index):
        assert raw_index.vocabulary_size == 3
        assert set(raw_index.vocabulary) == {"apple", "banana", "cherry"}

    def test_num_documents(self, raw_index):
        assert raw_index.num_documents == 3

    def test_doc_lengths(self, raw_index):
        assert raw_index.doc_lengths.tolist() == [3, 2, 4]

    def test_doc_lengths_read_only(self, raw_index):
        with pytest.raises(ValueError):
            raw_index.doc_lengths[0] = 99

    def test_total_and_average(self, raw_index):
        assert raw_index.total_terms == 9
        assert raw_index.average_doc_length == pytest.approx(3.0)

    def test_empty_corpus(self):
        index = InvertedIndex(Corpus(name="empty"), Analyzer.raw())
        assert index.vocabulary_size == 0
        assert index.average_doc_length == 0.0


class TestStemmedIndexing:
    def test_default_analyzer_stems_and_stops(self):
        corpus = Corpus(
            [Document(doc_id="d", text="the apples were falling from trees")]
        )
        index = InvertedIndex(corpus)
        assert "appl" in index
        assert "fall" in index
        assert "the" not in index
        assert "apples" not in index


class TestLanguageModelExport:
    def test_matches_index_statistics(self, raw_index):
        model = raw_index.language_model()
        assert len(model) == raw_index.vocabulary_size
        for term in raw_index.vocabulary:
            assert model.df(term) == raw_index.df(term)
            assert model.ctf(term) == raw_index.ctf(term)
        assert model.documents_seen == 3
        assert model.tokens_seen == 9

    def test_name_suffix(self, raw_index):
        assert raw_index.language_model().name == "fruit-actual"
