"""Unit tests for repro.corpus.document and repro.corpus.collection."""

from __future__ import annotations

import pytest

from repro.corpus import Corpus, Document
from repro.text import Analyzer


class TestDocument:
    def test_basic_fields(self):
        doc = Document(doc_id="d1", text="hello world", title="greeting")
        assert doc.doc_id == "d1"
        assert doc.title == "greeting"
        assert doc.topic is None

    def test_empty_doc_id_rejected(self):
        with pytest.raises(ValueError, match="doc_id"):
            Document(doc_id="", text="x")

    def test_size_bytes_utf8(self):
        assert Document(doc_id="d", text="abc").size_bytes == 3
        assert Document(doc_id="d", text="café").size_bytes == 5

    def test_len_is_text_length(self):
        assert len(Document(doc_id="d", text="abcd")) == 4

    def test_frozen(self):
        doc = Document(doc_id="d", text="x")
        with pytest.raises(AttributeError):
            doc.text = "y"  # type: ignore[misc]


class TestCorpus:
    def test_iteration_preserves_order(self, tiny_docs):
        corpus = Corpus(tiny_docs)
        assert [d.doc_id for d in corpus] == [d.doc_id for d in tiny_docs]

    def test_len(self, tiny_corpus):
        assert len(tiny_corpus) == 6

    def test_get_by_id(self, tiny_corpus):
        assert tiny_corpus.get("d3").doc_id == "d3"

    def test_get_missing_raises(self, tiny_corpus):
        with pytest.raises(KeyError):
            tiny_corpus.get("nope")

    def test_contains(self, tiny_corpus):
        assert "d1" in tiny_corpus
        assert "zzz" not in tiny_corpus

    def test_getitem_by_position(self, tiny_corpus):
        assert tiny_corpus[0].doc_id == "d1"

    def test_duplicate_id_rejected(self, tiny_docs):
        corpus = Corpus(tiny_docs)
        with pytest.raises(ValueError, match="duplicate"):
            corpus.add(Document(doc_id="d1", text="again"))

    def test_doc_ids(self, tiny_corpus):
        assert tiny_corpus.doc_ids == ["d1", "d2", "d3", "d4", "d5", "d6"]

    def test_topics_empty_when_unlabeled(self, tiny_corpus):
        assert tiny_corpus.topics() == set()

    def test_topics_collects_labels(self):
        corpus = Corpus(
            [
                Document(doc_id="a", text="x", topic="sports"),
                Document(doc_id="b", text="y", topic="finance"),
                Document(doc_id="c", text="z", topic="sports"),
            ]
        )
        assert corpus.topics() == {"sports", "finance"}


class TestCorpusStats:
    def test_raw_stats(self, tiny_corpus):
        stats = tiny_corpus.stats()
        assert stats.num_documents == 6
        assert stats.total_terms == sum(
            len(Analyzer.raw().analyze(d.text)) for d in tiny_corpus
        )
        assert stats.size_bytes == sum(d.size_bytes for d in tiny_corpus)

    def test_unique_terms_counts_distinct(self, tiny_corpus):
        stats = tiny_corpus.stats()
        vocabulary = set()
        for doc in tiny_corpus:
            vocabulary.update(Analyzer.raw().analyze(doc.text))
        assert stats.unique_terms == len(vocabulary)

    def test_indexed_stats_smaller_than_raw(self, tiny_corpus):
        raw = tiny_corpus.stats(Analyzer.raw())
        indexed = tiny_corpus.stats(Analyzer.inquery_style())
        assert indexed.total_terms < raw.total_terms  # stopwords removed
        assert indexed.unique_terms <= raw.unique_terms  # stemming conflates

    def test_mean_document_length(self, tiny_corpus):
        stats = tiny_corpus.stats()
        assert stats.mean_document_length == pytest.approx(
            stats.total_terms / stats.num_documents
        )

    def test_empty_corpus(self):
        stats = Corpus(name="empty").stats()
        assert stats.num_documents == 0
        assert stats.mean_document_length == 0.0

    def test_as_row_keys(self, tiny_corpus):
        row = tiny_corpus.stats().as_row()
        assert row["name"] == "tiny"
        assert set(row) == {
            "name",
            "size_bytes",
            "size_documents",
            "size_unique_terms",
            "size_total_terms",
        }
