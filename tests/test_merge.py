"""Unit tests for repro.dbselect.merge."""

from __future__ import annotations

import pytest

from repro.dbselect.base import finish_ranking
from repro.dbselect.merge import CoriMerger, MergedResult, RawScoreMerger, RoundRobinMerger
from repro.index.search import SearchResult


def results(*pairs: tuple[str, float]) -> list[SearchResult]:
    return [
        SearchResult(doc_id=doc_id, score=score, doc_index=i)
        for i, (doc_id, score) in enumerate(pairs)
    ]


@pytest.fixture
def ranking():
    return finish_ranking("q", {"good": 0.9, "mid": 0.5, "poor": 0.1})


@pytest.fixture
def per_db():
    return {
        "good": results(("g1", 5.0), ("g2", 4.0)),
        "mid": results(("m1", 500.0), ("m2", 400.0)),  # inflated scale!
        "poor": results(("p1", 0.05)),
    }


class TestCoriMerger:
    def test_normalisation_defeats_scale_differences(self, ranking, per_db):
        merged = CoriMerger().merge(ranking, per_db, n=10)
        # Raw scores would put m1/m2 first; the CORI merge normalises
        # within-database, so the good database's top doc wins.
        assert merged[0].doc_id == "g1"

    def test_collection_score_breaks_ties(self, ranking):
        per_db = {
            "good": results(("g1", 3.0), ("g2", 1.0)),
            "poor": results(("p1", 3.0), ("p2", 1.0)),
        }
        merged = CoriMerger().merge(ranking, per_db, n=4)
        # Both top docs normalise to 1.0 within their database; the
        # better collection's doc must rank first.
        assert merged[0].doc_id == "g1"
        assert merged[1].doc_id == "p1"

    def test_respects_n(self, ranking, per_db):
        assert len(CoriMerger().merge(ranking, per_db, n=2)) == 2

    def test_provenance_recorded(self, ranking, per_db):
        merged = CoriMerger().merge(ranking, per_db, n=10)
        assert {item.database for item in merged} == {"good", "mid", "poor"}

    def test_empty_results(self, ranking):
        assert CoriMerger().merge(ranking, {}, n=5) == []

    def test_databases_missing_from_ranking_skipped(self, ranking):
        merged = CoriMerger().merge(ranking, {"unknown": results(("u1", 1.0))}, n=5)
        assert merged == []

    def test_scores_in_unit_interval(self, ranking, per_db):
        merged = CoriMerger().merge(ranking, per_db, n=10)
        assert all(0.0 <= item.score <= 1.0 for item in merged)

    def test_invalid_parameters(self, ranking, per_db):
        with pytest.raises(ValueError):
            CoriMerger(collection_weight=-1)
        with pytest.raises(ValueError):
            CoriMerger().merge(ranking, per_db, n=0)

    def test_duplicates_keep_best_provenance(self, ranking):
        # Document "x" tops the good database's list but sits mid-pack
        # in mid's; only the best-scoring copy survives the merge.
        per_db = {
            "good": results(("x", 5.0), ("g2", 1.0)),
            "mid": results(("m1", 9.0), ("x", 6.0), ("m3", 3.0)),
        }
        merged = CoriMerger().merge(ranking, per_db, n=10)
        copies = [item for item in merged if item.doc_id == "x"]
        assert len(copies) == 1
        assert copies[0].database == "good"  # normalised 1.0 beats mid's 0.5
        assert len({item.doc_id for item in merged}) == len(merged)


class TestRawScoreMerger:
    def test_trusts_raw_scores(self, ranking, per_db):
        merged = RawScoreMerger().merge(ranking, per_db, n=3)
        assert merged[0].doc_id == "m1"  # the inflated scale wins

    def test_deterministic_tie_break(self, ranking):
        per_db = {
            "good": results(("x", 1.0)),
            "mid": results(("x", 1.0), ("y", 1.0)),
        }
        merged = RawScoreMerger().merge(ranking, per_db, n=2)
        # "x" appears once (copies deduplicate); its provenance is the
        # tie-break winner ("good" < "mid"), and "y" still fills slot 2.
        assert [(item.doc_id, item.database) for item in merged] == [
            ("x", "good"),
            ("y", "mid"),
        ]

    def test_unranked_database_dropped(self, ranking):
        per_db = {
            "good": results(("g1", 1.0)),
            "rogue": results(("r1", 99.0)),  # not in the ranking
        }
        merged = RawScoreMerger().merge(ranking, per_db, n=5)
        assert [item.doc_id for item in merged] == ["g1"]

    def test_duplicates_keep_best_score(self, ranking):
        per_db = {
            "good": results(("x", 2.0)),
            "mid": results(("x", 7.0)),
        }
        merged = RawScoreMerger().merge(ranking, per_db, n=5)
        assert merged == [MergedResult(doc_id="x", database="mid", score=7.0)]


class TestRoundRobinMerger:
    def test_interleaves_by_database_rank(self, ranking, per_db):
        merged = RoundRobinMerger().merge(ranking, per_db, n=5)
        assert [item.doc_id for item in merged] == ["g1", "m1", "p1", "g2", "m2"]

    def test_scores_reconstruct_order(self, ranking, per_db):
        merged = RoundRobinMerger().merge(ranking, per_db, n=5)
        scores = [item.score for item in merged]
        assert scores == sorted(scores, reverse=True)

    def test_stops_when_everything_emitted(self, ranking, per_db):
        merged = RoundRobinMerger().merge(ranking, per_db, n=100)
        assert len(merged) == 5

    def test_skips_empty_databases(self, ranking):
        per_db = {"good": [], "mid": results(("m1", 1.0))}
        merged = RoundRobinMerger().merge(ranking, per_db, n=5)
        assert [item.doc_id for item in merged] == ["m1"]

    def test_duplicates_emitted_once_from_better_rank(self, ranking):
        # "x" heads both lists; it must appear once, attributed to the
        # better-ranked database, without burning a later slot.
        per_db = {
            "good": results(("x", 3.0), ("g2", 2.0)),
            "mid": results(("x", 9.0), ("m2", 8.0)),
        }
        merged = RoundRobinMerger().merge(ranking, per_db, n=4)
        assert [(item.doc_id, item.database) for item in merged] == [
            ("x", "good"),
            ("g2", "good"),
            ("m2", "mid"),
        ]

    def test_unranked_database_dropped(self, ranking):
        per_db = {
            "good": results(("g1", 1.0)),
            "rogue": results(("r1", 1.0)),
        }
        merged = RoundRobinMerger().merge(ranking, per_db, n=5)
        assert [item.doc_id for item in merged] == ["g1"]
