"""Unit tests for repro.sampling.staleness."""

from __future__ import annotations

import pytest

from repro.corpus import Corpus
from repro.index import DatabaseServer
from repro.sampling import (
    MaxDocuments,
    QueryBasedSampler,
    RandomFromOther,
    RefreshPolicy,
    staleness_probe,
)
from repro.synth import cacm_like, wsj88_like
from repro.text.analyzer import Analyzer


@pytest.fixture(scope="module")
def stable_server() -> DatabaseServer:
    return DatabaseServer(cacm_like().build(seed=81, scale=0.3))


@pytest.fixture(scope="module")
def stored_model(stable_server):
    sampler = QueryBasedSampler(
        stable_server,
        bootstrap=RandomFromOther(stable_server.actual_language_model()),
        stopping=MaxDocuments(200),
        seed=4,
    )
    return sampler.run().model


@pytest.fixture(scope="module")
def drifted_server() -> DatabaseServer:
    """A 'replaced' database: same interface, very different content."""
    replacement = wsj88_like().build(seed=99, scale=0.08)
    renamed = Corpus(replacement, name="cacm")  # same name, new content
    return DatabaseServer(renamed)


class TestStalenessProbe:
    def test_fresh_database_not_stale(self, stable_server, stored_model):
        report = staleness_probe(
            stable_server,
            stored_model,
            bootstrap=RandomFromOther(stable_server.actual_language_model()),
            probe_documents=50,
            seed=7,
        )
        assert report.probe_documents == 50
        assert not report.is_stale(), report

    def test_replaced_database_detected(self, drifted_server, stored_model):
        report = staleness_probe(
            drifted_server,
            stored_model,
            bootstrap=RandomFromOther(drifted_server.actual_language_model()),
            probe_documents=50,
            seed=7,
        )
        assert report.is_stale(), report

    def test_probe_size_validated(self, stable_server, stored_model):
        with pytest.raises(ValueError):
            staleness_probe(
                stable_server,
                stored_model,
                bootstrap=RandomFromOther(stable_server.actual_language_model()),
                probe_documents=0,
            )

    def test_report_fields_in_range(self, stable_server, stored_model):
        report = staleness_probe(
            stable_server,
            stored_model,
            bootstrap=RandomFromOther(stable_server.actual_language_model()),
            probe_documents=30,
            seed=1,
        )
        assert 0.0 <= report.rdiff_score <= 1.0
        assert -1.0 <= report.spearman <= 1.0


class TestRefreshPolicy:
    def test_fresh_model_kept(self, stable_server, stored_model):
        policy = RefreshPolicy(refresh_documents=100)
        model, report, refreshed = policy.maybe_refresh(
            stable_server,
            stored_model,
            bootstrap=RandomFromOther(stable_server.actual_language_model()),
            seed=3,
        )
        assert not refreshed
        assert model is stored_model

    def test_stale_model_replaced(self, drifted_server, stored_model):
        policy = RefreshPolicy(refresh_documents=80)
        model, report, refreshed = policy.maybe_refresh(
            drifted_server,
            stored_model,
            bootstrap=RandomFromOther(drifted_server.actual_language_model()),
            seed=3,
        )
        assert refreshed
        assert report.is_stale()
        assert model is not stored_model
        assert model.documents_seen == 80


class TestRefreshPolicyThresholds:
    """Threshold-forced trigger / no-trigger paths, independent of the
    statistical behaviour of any particular probe."""

    def test_impossible_floor_forces_refresh(self, stable_server, stored_model):
        # Spearman can never reach 1.1, so even a perfectly fresh
        # database must take the refresh branch.
        policy = RefreshPolicy(spearman_floor=1.1, refresh_documents=60)
        model, report, refreshed = policy.maybe_refresh(
            stable_server,
            stored_model,
            bootstrap=RandomFromOther(stable_server.actual_language_model()),
            seed=5,
        )
        assert refreshed
        assert model is not stored_model
        assert model.documents_seen == 60
        assert report.is_stale(policy.rdiff_threshold, policy.spearman_floor)

    def test_lenient_thresholds_always_keep(self, drifted_server, stored_model):
        # rdiff <= 1 and spearman >= -1 by construction, so these
        # thresholds can never trip: even a replaced database is kept.
        policy = RefreshPolicy(rdiff_threshold=2.0, spearman_floor=-2.0)
        model, report, refreshed = policy.maybe_refresh(
            drifted_server,
            stored_model,
            bootstrap=RandomFromOther(drifted_server.actual_language_model()),
            seed=5,
        )
        assert not refreshed
        assert model is stored_model
        assert not report.is_stale(policy.rdiff_threshold, policy.spearman_floor)

    def test_probe_and_refresh_are_traced(self, stable_server, stored_model):
        from repro.obs import TraceRecorder
        from repro.sampling.transport import SimulatedClock

        recorder = TraceRecorder(clock=SimulatedClock())
        policy = RefreshPolicy(spearman_floor=1.1, refresh_documents=40)
        policy.maybe_refresh(
            stable_server,
            stored_model,
            bootstrap=RandomFromOther(stable_server.actual_language_model()),
            seed=5,
            recorder=recorder,
        )
        # One sample_run span for the probe and one for the refresh.
        run_spans = [s for s in recorder.spans if s.name == "sample_run"]
        assert len(run_spans) == 2


class TestAnalyzerThreading:
    """The stored model's text pipeline must ride through probe and refresh.

    These pin the fix for a real bug: ``maybe_refresh`` used to probe
    (and refresh) with raw tokens regardless of how the stored model
    was built, so a stemming-analyzer model compared two different
    vocabularies — spurious staleness, then a silent raw-token model
    installed in its place.
    """

    @pytest.fixture(scope="class")
    def stemmed_model(self, stable_server):
        sampler = QueryBasedSampler(
            stable_server,
            bootstrap=RandomFromOther(stable_server.actual_language_model()),
            stopping=MaxDocuments(200),
            analyzer=Analyzer.inquery_style(),
            seed=4,
        )
        return sampler.run().model

    def test_stemmed_model_survives_refresh_cycle(self, stable_server, stemmed_model):
        policy = RefreshPolicy(refresh_documents=100)
        model, report, refreshed = policy.maybe_refresh(
            stable_server,
            stemmed_model,
            bootstrap=RandomFromOther(stable_server.actual_language_model()),
            seed=3,
            analyzer=Analyzer.inquery_style(),
        )
        assert not refreshed
        assert model is stemmed_model
        assert not report.is_stale(), report

    def test_matched_probe_agrees_better_than_mismatched(
        self, stable_server, stemmed_model
    ):
        bootstrap = RandomFromOther(stable_server.actual_language_model())
        matched = staleness_probe(
            stable_server,
            stemmed_model,
            bootstrap=bootstrap,
            probe_documents=50,
            analyzer=Analyzer.inquery_style(),
            seed=7,
        )
        mismatched = staleness_probe(
            stable_server,
            stemmed_model,
            bootstrap=bootstrap,
            probe_documents=50,
            seed=7,  # pre-fix behaviour: raw tokens against a stemmed model
        )
        assert matched.spearman > mismatched.spearman

    def test_forced_refresh_keeps_analyzer(self, stable_server, stemmed_model):
        from repro.utils.rand import derive_seed

        policy = RefreshPolicy(spearman_floor=1.1, refresh_documents=60)
        model, _, refreshed = policy.maybe_refresh(
            stable_server,
            stemmed_model,
            bootstrap=RandomFromOther(stable_server.actual_language_model()),
            seed=5,
            analyzer=Analyzer.inquery_style(),
        )
        assert refreshed
        # The refreshed model must be exactly the sample a direct run
        # with the same analyzer produces at the derived refresh seed.
        direct = QueryBasedSampler(
            stable_server,
            bootstrap=RandomFromOther(stable_server.actual_language_model()),
            stopping=MaxDocuments(60),
            analyzer=Analyzer.inquery_style(),
            seed=derive_seed(5, "refresh"),
        ).run().model
        assert model.vocabulary == direct.vocabulary
        assert all(model.df(t) == direct.df(t) and model.ctf(t) == direct.ctf(t) for t in direct)

    def test_refresh_all_threads_analyzer(self, stable_server, stemmed_model):
        policy = RefreshPolicy(refresh_documents=50)
        models, reports, refreshed = policy.refresh_all(
            {"cacm": stable_server},
            {"cacm": stemmed_model},
            lambda name: RandomFromOther(stable_server.actual_language_model()),
            seed=11,
            analyzer=Analyzer.inquery_style(),
        )
        assert refreshed == ()
        assert models["cacm"] is stemmed_model
        assert not reports["cacm"].is_stale()


class _QueryRecordingDatabase:
    """Forwards sampling queries, recording them in arrival order."""

    def __init__(self, inner: DatabaseServer) -> None:
        self.inner = inner
        self.name = getattr(inner, "name", "database")
        self.queries: list[str] = []

    def run_query(self, query: str, max_docs: int = 10):
        self.queries.append(query)
        return self.inner.run_query(query, max_docs=max_docs)


class TestSweepSeedIndependence:
    """Per-database seed discipline in refresh_all.

    Seeds are derived from the sweep seed *and the database name*, so
    growing the federation must never perturb the probe (or refresh)
    query sequences of databases that were already in it — the
    property that makes queued, budgeted, out-of-order sweeps
    equivalent to the serial one.
    """

    def _run_sweep(self, names: list[str]) -> dict[str, list[str]]:
        servers = {}
        for index, name in enumerate(names):
            corpus = Corpus(cacm_like().build(seed=50 + index, scale=0.1), name=name)
            servers[name] = DatabaseServer(corpus)
        models = {
            name: QueryBasedSampler(
                server,
                bootstrap=RandomFromOther(server.actual_language_model()),
                stopping=MaxDocuments(40),
                seed=3,
            ).run().model
            for name, server in servers.items()
        }
        recording = {name: _QueryRecordingDatabase(server) for name, server in servers.items()}
        policy = RefreshPolicy(refresh_documents=30)
        policy.refresh_all(
            recording,
            models,
            lambda name: RandomFromOther(servers[name].actual_language_model()),
            seed=17,
        )
        return {name: recording[name].queries for name in names}

    def test_adding_a_database_leaves_other_probe_sequences_alone(self):
        small = self._run_sweep(["alpha", "beta"])
        grown = self._run_sweep(["alpha", "beta", "gamma"])
        assert small["alpha"] == grown["alpha"]
        assert small["beta"] == grown["beta"]
        assert grown["gamma"]  # the new database was actually probed
