"""Unit tests for repro.sampling.staleness."""

from __future__ import annotations

import pytest

from repro.corpus import Corpus
from repro.index import DatabaseServer
from repro.sampling import (
    MaxDocuments,
    QueryBasedSampler,
    RandomFromOther,
    RefreshPolicy,
    staleness_probe,
)
from repro.synth import cacm_like, wsj88_like


@pytest.fixture(scope="module")
def stable_server() -> DatabaseServer:
    return DatabaseServer(cacm_like().build(seed=81, scale=0.3))


@pytest.fixture(scope="module")
def stored_model(stable_server):
    sampler = QueryBasedSampler(
        stable_server,
        bootstrap=RandomFromOther(stable_server.actual_language_model()),
        stopping=MaxDocuments(200),
        seed=4,
    )
    return sampler.run().model


@pytest.fixture(scope="module")
def drifted_server() -> DatabaseServer:
    """A 'replaced' database: same interface, very different content."""
    replacement = wsj88_like().build(seed=99, scale=0.08)
    renamed = Corpus(replacement, name="cacm")  # same name, new content
    return DatabaseServer(renamed)


class TestStalenessProbe:
    def test_fresh_database_not_stale(self, stable_server, stored_model):
        report = staleness_probe(
            stable_server,
            stored_model,
            bootstrap=RandomFromOther(stable_server.actual_language_model()),
            probe_documents=50,
            seed=7,
        )
        assert report.probe_documents == 50
        assert not report.is_stale(), report

    def test_replaced_database_detected(self, drifted_server, stored_model):
        report = staleness_probe(
            drifted_server,
            stored_model,
            bootstrap=RandomFromOther(drifted_server.actual_language_model()),
            probe_documents=50,
            seed=7,
        )
        assert report.is_stale(), report

    def test_probe_size_validated(self, stable_server, stored_model):
        with pytest.raises(ValueError):
            staleness_probe(
                stable_server,
                stored_model,
                bootstrap=RandomFromOther(stable_server.actual_language_model()),
                probe_documents=0,
            )

    def test_report_fields_in_range(self, stable_server, stored_model):
        report = staleness_probe(
            stable_server,
            stored_model,
            bootstrap=RandomFromOther(stable_server.actual_language_model()),
            probe_documents=30,
            seed=1,
        )
        assert 0.0 <= report.rdiff_score <= 1.0
        assert -1.0 <= report.spearman <= 1.0


class TestRefreshPolicy:
    def test_fresh_model_kept(self, stable_server, stored_model):
        policy = RefreshPolicy(refresh_documents=100)
        model, report, refreshed = policy.maybe_refresh(
            stable_server,
            stored_model,
            bootstrap=RandomFromOther(stable_server.actual_language_model()),
            seed=3,
        )
        assert not refreshed
        assert model is stored_model

    def test_stale_model_replaced(self, drifted_server, stored_model):
        policy = RefreshPolicy(refresh_documents=80)
        model, report, refreshed = policy.maybe_refresh(
            drifted_server,
            stored_model,
            bootstrap=RandomFromOther(drifted_server.actual_language_model()),
            seed=3,
        )
        assert refreshed
        assert report.is_stale()
        assert model is not stored_model
        assert model.documents_seen == 80


class TestRefreshPolicyThresholds:
    """Threshold-forced trigger / no-trigger paths, independent of the
    statistical behaviour of any particular probe."""

    def test_impossible_floor_forces_refresh(self, stable_server, stored_model):
        # Spearman can never reach 1.1, so even a perfectly fresh
        # database must take the refresh branch.
        policy = RefreshPolicy(spearman_floor=1.1, refresh_documents=60)
        model, report, refreshed = policy.maybe_refresh(
            stable_server,
            stored_model,
            bootstrap=RandomFromOther(stable_server.actual_language_model()),
            seed=5,
        )
        assert refreshed
        assert model is not stored_model
        assert model.documents_seen == 60
        assert report.is_stale(policy.rdiff_threshold, policy.spearman_floor)

    def test_lenient_thresholds_always_keep(self, drifted_server, stored_model):
        # rdiff <= 1 and spearman >= -1 by construction, so these
        # thresholds can never trip: even a replaced database is kept.
        policy = RefreshPolicy(rdiff_threshold=2.0, spearman_floor=-2.0)
        model, report, refreshed = policy.maybe_refresh(
            drifted_server,
            stored_model,
            bootstrap=RandomFromOther(drifted_server.actual_language_model()),
            seed=5,
        )
        assert not refreshed
        assert model is stored_model
        assert not report.is_stale(policy.rdiff_threshold, policy.spearman_floor)

    def test_probe_and_refresh_are_traced(self, stable_server, stored_model):
        from repro.obs import TraceRecorder
        from repro.sampling.transport import SimulatedClock

        recorder = TraceRecorder(clock=SimulatedClock())
        policy = RefreshPolicy(spearman_floor=1.1, refresh_documents=40)
        policy.maybe_refresh(
            stable_server,
            stored_model,
            bootstrap=RandomFromOther(stable_server.actual_language_model()),
            seed=5,
            recorder=recorder,
        )
        # One sample_run span for the probe and one for the refresh.
        run_spans = [s for s in recorder.spans if s.name == "sample_run"]
        assert len(run_spans) == 2


class _QueryRecordingDatabase:
    """Forwards sampling queries, recording them in arrival order."""

    def __init__(self, inner: DatabaseServer) -> None:
        self.inner = inner
        self.name = getattr(inner, "name", "database")
        self.queries: list[str] = []

    def run_query(self, query: str, max_docs: int = 10):
        self.queries.append(query)
        return self.inner.run_query(query, max_docs=max_docs)


class TestSweepSeedIndependence:
    """Per-database seed discipline in refresh_all.

    Seeds are derived from the sweep seed *and the database name*, so
    growing the federation must never perturb the probe (or refresh)
    query sequences of databases that were already in it — the
    property that makes queued, budgeted, out-of-order sweeps
    equivalent to the serial one.
    """

    def _run_sweep(self, names: list[str]) -> dict[str, list[str]]:
        servers = {}
        for index, name in enumerate(names):
            corpus = Corpus(cacm_like().build(seed=50 + index, scale=0.1), name=name)
            servers[name] = DatabaseServer(corpus)
        models = {
            name: QueryBasedSampler(
                server,
                bootstrap=RandomFromOther(server.actual_language_model()),
                stopping=MaxDocuments(40),
                seed=3,
            ).run().model
            for name, server in servers.items()
        }
        recording = {name: _QueryRecordingDatabase(server) for name, server in servers.items()}
        policy = RefreshPolicy(refresh_documents=30)
        policy.refresh_all(
            recording,
            models,
            lambda name: RandomFromOther(servers[name].actual_language_model()),
            seed=17,
        )
        return {name: recording[name].queries for name in names}

    def test_adding_a_database_leaves_other_probe_sequences_alone(self):
        small = self._run_sweep(["alpha", "beta"])
        grown = self._run_sweep(["alpha", "beta", "gamma"])
        assert small["alpha"] == grown["alpha"]
        assert small["beta"] == grown["beta"]
        assert grown["gamma"]  # the new database was actually probed
