"""Public API surface tests.

Guards the promises README makes: every re-exported name imports, every
``__all__`` entry exists, and all public callables carry docstrings.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.classify",
    "repro.corpus",
    "repro.dbselect",
    "repro.expansion",
    "repro.experiments",
    "repro.federation",
    "repro.index",
    "repro.lm",
    "repro.sampling",
    "repro.scenarios",
    "repro.serving",
    "repro.sizeest",
    "repro.starts",
    "repro.store",
    "repro.summarize",
    "repro.synth",
    "repro.text",
    "repro.utils",
]


def _walk_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                if info.name.startswith("__"):
                    continue  # never import __main__ (it runs the CLI)
                yield importlib.import_module(f"{package_name}.{info.name}")


@pytest.mark.parametrize("package_name", PACKAGES)
class TestPackageSurface:
    def test_imports(self, package_name):
        module = importlib.import_module(package_name)
        assert module is not None

    def test_all_entries_resolve(self, package_name):
        module = importlib.import_module(package_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package_name}.__all__ lists missing {name}"

    def test_module_docstring(self, package_name):
        module = importlib.import_module(package_name)
        assert module.__doc__ and module.__doc__.strip()


class TestDocstrings:
    def test_every_public_callable_documented(self):
        undocumented = []
        for module in _walk_modules():
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if obj.__module__.startswith("repro") and not (obj.__doc__ or "").strip():
                        undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, undocumented

    def test_public_methods_documented(self):
        undocumented = []
        for module in _walk_modules():
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if not inspect.isclass(obj) or not obj.__module__.startswith("repro"):
                    continue
                for method_name, method in inspect.getmembers(obj, inspect.isfunction):
                    if method_name.startswith("_"):
                        continue
                    if method.__qualname__.split(".")[0] != obj.__name__:
                        continue  # inherited
                    if not (method.__doc__ or "").strip():
                        undocumented.append(f"{obj.__module__}.{obj.__name__}.{method_name}")
        assert not undocumented, sorted(set(undocumented))


class TestVersion:
    def test_version_string(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))
