"""Unit tests for repro.index.scoring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.index.scoring import (
    Bm25Scorer,
    CollectionContext,
    InqueryScorer,
    TfIdfScorer,
    _robertson_tf,
)

CONTEXT = CollectionContext(num_documents=1000, average_doc_length=100.0)


def _score(scorer, tfs, lengths, df, context=CONTEXT):
    return scorer.score_term(
        np.asarray(tfs, dtype=np.float64),
        np.asarray(lengths, dtype=np.float64),
        df,
        context,
    )


class TestRobertsonTf:
    def test_increases_with_tf(self):
        values = _robertson_tf(np.array([1.0, 2.0, 5.0]), np.full(3, 100.0), 100.0)
        assert np.all(np.diff(values) > 0)

    def test_decreases_with_doc_length(self):
        values = _robertson_tf(np.array([3.0, 3.0]), np.array([50.0, 500.0]), 100.0)
        assert values[0] > values[1]

    def test_saturates_below_one(self):
        values = _robertson_tf(np.array([10_000.0]), np.array([100.0]), 100.0)
        assert values[0] < 1.0

    def test_zero_average_guarded(self):
        values = _robertson_tf(np.array([2.0]), np.array([10.0]), 0.0)
        assert np.isfinite(values[0])


@pytest.mark.parametrize("scorer", [TfIdfScorer(), Bm25Scorer(), InqueryScorer()])
class TestAllScorers:
    def test_higher_tf_scores_higher(self, scorer):
        scores = _score(scorer, [1, 5], [100, 100], df=10)
        assert scores[1] > scores[0]

    def test_longer_doc_scores_lower_at_same_tf(self, scorer):
        scores = _score(scorer, [3, 3], [50, 400], df=10)
        assert scores[0] > scores[1]

    def test_rare_term_scores_higher(self, scorer):
        rare = _score(scorer, [3], [100], df=2)[0]
        common = _score(scorer, [3], [100], df=900)[0]
        assert rare > common

    def test_scores_finite_and_nonnegative(self, scorer):
        scores = _score(scorer, [1, 2, 100], [10, 100, 1000], df=500)
        assert np.all(np.isfinite(scores))
        assert np.all(scores >= 0)

    def test_empty_collection_scores_zero(self, scorer):
        # A scorer built against an empty database must degrade to
        # "nothing matches", not raise ZeroDivisionError from the
        # log(N + 1) idf normalisation.
        empty = CollectionContext(num_documents=0, average_doc_length=0.0)
        scores = _score(scorer, [1, 5], [100, 100], df=3, context=empty)
        assert scores.dtype == np.float64
        assert np.array_equal(scores, np.zeros(2))

    def test_empty_collection_scores_zero_batched(self, scorer):
        empty = CollectionContext(num_documents=0, average_doc_length=0.0)
        scores = scorer.score_terms(
            np.array([1.0, 5.0, 2.0]),
            np.array([100.0, 100.0, 50.0]),
            np.array([3.0, 3.0, 1.0]),
            empty,
        )
        assert scores.dtype == np.float64
        assert np.array_equal(scores, np.zeros(3))


class TestInquerySpecifics:
    def test_default_belief_floor(self):
        scorer = InqueryScorer(default_belief=0.4)
        scores = _score(scorer, [1], [100], df=999)
        assert scores[0] >= 0.4

    def test_belief_bounded_by_one(self):
        scorer = InqueryScorer()
        scores = _score(scorer, [1000], [100], df=1)
        assert scores[0] < 1.0


class TestBm25Specifics:
    def test_k1_zero_ignores_tf(self):
        scorer = Bm25Scorer(k1=0.0)
        scores = _score(scorer, [1, 10], [100, 100], df=10)
        assert scores[0] == pytest.approx(scores[1])

    def test_b_zero_ignores_length(self):
        scorer = Bm25Scorer(b=0.0)
        scores = _score(scorer, [3, 3], [50, 500], df=10)
        assert scores[0] == pytest.approx(scores[1])
