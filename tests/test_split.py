"""Unit tests for repro.corpus.split."""

from __future__ import annotations

import pytest

from repro.corpus import (
    Corpus,
    Document,
    partition_by_topic,
    partition_chunks,
    partition_round_robin,
)


@pytest.fixture
def labeled_corpus() -> Corpus:
    documents = []
    for i in range(10):
        topic = ["sports", "finance", "science"][i % 3]
        documents.append(Document(doc_id=f"d{i}", text=f"doc {i}", topic=topic))
    return Corpus(documents, name="labeled")


class TestRoundRobin:
    def test_covers_all_documents(self, labeled_corpus):
        parts = partition_round_robin(labeled_corpus, 3)
        assert sum(len(p) for p in parts) == len(labeled_corpus)

    def test_near_equal_sizes(self, labeled_corpus):
        sizes = [len(p) for p in partition_round_robin(labeled_corpus, 3)]
        assert max(sizes) - min(sizes) <= 1

    def test_no_duplicates_across_parts(self, labeled_corpus):
        parts = partition_round_robin(labeled_corpus, 4)
        all_ids = [doc_id for part in parts for doc_id in part.doc_ids]
        assert len(all_ids) == len(set(all_ids))

    def test_invalid_k(self, labeled_corpus):
        with pytest.raises(ValueError):
            partition_round_robin(labeled_corpus, 0)

    def test_part_names(self, labeled_corpus):
        parts = partition_round_robin(labeled_corpus, 2)
        assert parts[0].name == "labeled-rr0"


class TestChunks:
    def test_contiguous(self, labeled_corpus):
        parts = partition_chunks(labeled_corpus, 3)
        flattened = [doc_id for part in parts for doc_id in part.doc_ids]
        assert flattened == labeled_corpus.doc_ids

    def test_sizes_near_equal(self, labeled_corpus):
        sizes = [len(p) for p in partition_chunks(labeled_corpus, 3)]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_more_parts_than_documents(self):
        corpus = Corpus([Document(doc_id="a", text="x")])
        parts = partition_chunks(corpus, 3)
        assert sum(len(p) for p in parts) == 1


class TestByTopic:
    def test_one_part_per_topic(self, labeled_corpus):
        parts = partition_by_topic(labeled_corpus)
        assert len(parts) == 3
        assert [p.name for p in parts] == [
            "labeled-finance",
            "labeled-science",
            "labeled-sports",
        ]

    def test_parts_are_topic_pure(self, labeled_corpus):
        for part in partition_by_topic(labeled_corpus):
            assert len(part.topics()) == 1

    def test_unlabeled_go_to_misc(self):
        corpus = Corpus(
            [
                Document(doc_id="a", text="x", topic="sports"),
                Document(doc_id="b", text="y"),
            ]
        )
        parts = partition_by_topic(corpus)
        names = {p.name for p in parts}
        assert any(name.endswith("-misc") for name in names)
