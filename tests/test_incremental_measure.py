"""Equivalence tests for the incremental curve measurer.

The incremental engine's contract is *bit-identity* with full
reprojection, not approximation — these tests enforce it at both
levels: the carried projected model matches ``model.project()`` term
for term on every snapshot of a real 300-document run, and the curves
produced by :func:`measure_run` equal :func:`measure_run_full`'s
exactly (``==`` on floats, no tolerances).
"""

from __future__ import annotations

import pytest

from repro.experiments.incremental import IncrementalCurveMeasurer
from repro.experiments.runner import measure_run, measure_run_full, run_sampling
from repro.experiments.testbed import Testbed as ExperimentTestbed
from repro.lm.model import LanguageModel
from repro.sampling.selection import FrequencyFromLearned
from repro.text.analyzer import Analyzer


@pytest.fixture(scope="module")
def testbed():
    return ExperimentTestbed(seed=1, scale=0.05)


@pytest.fixture(scope="module")
def run_and_actual(testbed):
    """A 300-document run against the 600-document WSJ-like corpus."""
    server = testbed.server("wsj88")
    run = run_sampling(
        server,
        bootstrap=testbed.bootstrap(),
        strategy=FrequencyFromLearned("df"),
        max_documents=300,
        seed=7,
    )
    return run, testbed.actual_model("wsj88"), server.index.analyzer


class TestProjectionEquivalence:
    def test_every_snapshot_matches_full_projection(self, run_and_actual):
        run, actual, analyzer = run_and_actual
        assert len(run.snapshots) >= 5  # a real multi-snapshot run
        measurer = IncrementalCurveMeasurer(actual, analyzer)
        for snapshot in run.snapshots:
            measurer.advance(snapshot.model)
            carried = measurer.projected_model()
            reference = snapshot.model.project(analyzer)
            assert carried._df == reference._df
            assert carried._ctf == reference._ctf
            assert carried.total_ctf == reference.total_ctf
            assert carried.documents_seen == reference.documents_seen
            assert carried.tokens_seen == reference.tokens_seen

    def test_common_vocabulary_matches_set_intersection(self, run_and_actual):
        run, actual, analyzer = run_and_actual
        measurer = IncrementalCurveMeasurer(actual, analyzer)
        for snapshot in run.snapshots:
            measurer.advance(snapshot.model)
            projected = snapshot.model.project(analyzer)
            expected = sorted(projected.vocabulary & actual.vocabulary)
            assert measurer._common_terms == expected


class TestCurveEquivalence:
    def test_measure_run_equals_full_reprojection(self, run_and_actual):
        run, actual, analyzer = run_and_actual
        args = (run, actual, analyzer, "wsj88", "df_llm", 4)
        incremental = measure_run(*args)
        full = measure_run_full(*args)
        # Tuple equality covers every float in every point, exactly.
        assert incremental.points == full.points
        assert incremental == full

    def test_measurer_is_reusable_per_run_only(self, run_and_actual):
        run, actual, analyzer = run_and_actual
        measurer = IncrementalCurveMeasurer(actual, analyzer)
        measurer.advance(run.snapshots[-1].model)
        with pytest.raises(ValueError):
            # Feeding an earlier (smaller) snapshot afterwards is a
            # contract violation, not a silent wrong answer.
            measurer.advance(run.snapshots[0].model)


class TestSmallModels:
    def _analyzer(self):
        return Analyzer.inquery_style()

    def _actual(self):
        actual = LanguageModel(name="actual")
        actual.add_term("market", df=3, ctf=9)
        actual.add_term("court", df=2, ctf=4)
        actual.add_term("trade", df=1, ctf=2)
        return actual

    def test_empty_learned_model(self):
        measurer = IncrementalCurveMeasurer(self._actual(), self._analyzer())
        percentage, ratio, spearman = measurer.measure(LanguageModel())
        assert (percentage, ratio, spearman) == (0.0, 0.0, 0.0)

    def test_single_common_term(self):
        measurer = IncrementalCurveMeasurer(self._actual(), self._analyzer())
        learned = LanguageModel()
        learned.add_term("market", df=1, ctf=2)
        percentage, ratio, spearman = measurer.measure(learned)
        assert percentage == pytest.approx(1 / 3)
        assert ratio == pytest.approx(9 / 15)
        assert spearman == 1.0

    def test_growing_model_with_stopwords_and_stemming(self):
        actual = self._actual()
        analyzer = self._analyzer()
        measurer = IncrementalCurveMeasurer(actual, analyzer)
        learned = LanguageModel()
        # "the" is a stopword (dropped); "markets"/"market" conflate
        # under the stemmer into one projected term.
        learned.add_document(["the", "markets", "court"])
        measurer.advance(learned.copy())
        learned.add_document(["market", "markets", "trade"])
        measurer.advance(learned.copy())
        carried = measurer.projected_model()
        reference = learned.project(analyzer)
        assert carried._df == reference._df
        assert carried._ctf == reference._ctf

    def test_empty_actual_model(self):
        measurer = IncrementalCurveMeasurer(LanguageModel(), self._analyzer())
        learned = LanguageModel()
        learned.add_term("market", df=1, ctf=1)
        assert measurer.measure(learned) == (0.0, 0.0, 0.0)
