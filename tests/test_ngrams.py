"""Unit tests for repro.lm.ngrams (bigram language models)."""

from __future__ import annotations

import pytest

from repro.corpus import Document
from repro.lm.ngrams import (
    BIGRAM_SEPARATOR,
    bigram_model_from_documents,
    bigrams,
    split_bigram,
)
from repro.text import Analyzer


class TestBigrams:
    def test_adjacent_pairs(self):
        assert bigrams(["a", "b", "c"]) == [f"a{BIGRAM_SEPARATOR}b", f"b{BIGRAM_SEPARATOR}c"]

    def test_short_sequences(self):
        assert bigrams(["solo"]) == []
        assert bigrams([]) == []

    def test_split_round_trip(self):
        for pair in bigrams(["alpha", "beta", "gamma"]):
            first, second = split_bigram(pair)
            assert f"{first}{BIGRAM_SEPARATOR}{second}" == pair

    def test_split_rejects_unigram(self):
        with pytest.raises(ValueError):
            split_bigram("plain")

    def test_separator_never_produced_by_tokenizer(self):
        from repro.text.tokenizer import Tokenizer

        assert Tokenizer().tokenize(f"a{BIGRAM_SEPARATOR}b") == ["a", "b"]


class TestBigramModel:
    def test_counts(self):
        docs = [
            Document(doc_id="a", text="white house press"),
            Document(doc_id="b", text="white house garden"),
        ]
        model = bigram_model_from_documents(docs, Analyzer.raw())
        assert model.df(f"white{BIGRAM_SEPARATOR}house") == 2
        assert model.ctf(f"white{BIGRAM_SEPARATOR}house") == 2
        assert model.df(f"house{BIGRAM_SEPARATOR}press") == 1
        assert model.documents_seen == 2

    def test_sentence_boundaries_reset_adjacency(self):
        docs = [Document(doc_id="a", text="alpha beta. gamma delta")]
        model = bigram_model_from_documents(docs, Analyzer.raw())
        assert f"alpha{BIGRAM_SEPARATOR}beta" in model
        assert f"gamma{BIGRAM_SEPARATOR}delta" in model
        assert f"beta{BIGRAM_SEPARATOR}gamma" not in model

    def test_stopwords_removed_before_pairing(self):
        docs = [Document(doc_id="a", text="white and house")]
        model = bigram_model_from_documents(docs)  # inquery-style default
        assert f"white{BIGRAM_SEPARATOR}hous" in model

    def test_stemming_applied(self):
        docs = [Document(doc_id="a", text="running dogs")]
        model = bigram_model_from_documents(docs)
        assert f"run{BIGRAM_SEPARATOR}dog" in model

    def test_repeated_phrase_in_one_document(self):
        docs = [Document(doc_id="a", text="red car red car red car")]
        model = bigram_model_from_documents(docs, Analyzer.raw())
        pair = f"red{BIGRAM_SEPARATOR}car"
        assert model.df(pair) == 1
        assert model.ctf(pair) == 3

    def test_empty_documents(self):
        docs = [Document(doc_id="a", text="...")]
        model = bigram_model_from_documents(docs, Analyzer.raw())
        assert len(model) == 0
        assert model.documents_seen == 1
