"""Unit tests for repro.lm.compare — the paper's metrics.

Includes the paper's own worked examples: the apple/bear ctf-ratio
example of Section 4.3.2 and the two-swapped-terms rdiff example of
Section 6.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.lm import (
    LanguageModel,
    ctf_ratio,
    percentage_learned,
    rank_terms,
    rdiff,
    spearman_rank_correlation,
)


def make_model(term_ctf: dict[str, int], name: str = "m") -> LanguageModel:
    """Model where each term occurs ctf times across ctf documents."""
    model = LanguageModel(name=name)
    for term, ctf in term_ctf.items():
        model.add_term(term, df=ctf, ctf=ctf)
    return model


class TestPercentageLearned:
    def test_full_coverage(self):
        actual = make_model({"a": 3, "b": 2})
        assert percentage_learned(actual, actual) == 1.0

    def test_partial_coverage(self):
        actual = make_model({"a": 3, "b": 2, "c": 1, "d": 1})
        learned = make_model({"a": 1, "b": 1})
        assert percentage_learned(learned, actual) == 0.5

    def test_extra_learned_terms_ignored(self):
        actual = make_model({"a": 3, "b": 2})
        learned = make_model({"a": 1, "x": 9, "y": 9})
        assert percentage_learned(learned, actual) == 0.5

    def test_empty_actual(self):
        assert percentage_learned(make_model({"a": 1}), make_model({})) == 0.0


class TestCtfRatio:
    def test_paper_apple_bear_example(self):
        # "if the database consists of 99 occurrences of apple and 1
        # occurrence of bear, and if the learned language model contains
        # just apple, its ctf ratio is 99 / (99 + 1) = 0.99"
        actual = make_model({"apple": 99, "bear": 1})
        learned = make_model({"apple": 5})
        assert ctf_ratio(learned, actual) == pytest.approx(0.99)

    def test_full_coverage(self):
        actual = make_model({"a": 10, "b": 5})
        assert ctf_ratio(actual, actual) == 1.0

    def test_uses_actual_frequencies_not_learned(self):
        actual = make_model({"a": 90, "b": 10})
        learned = make_model({"b": 1000})  # learned frequencies irrelevant
        assert ctf_ratio(learned, actual) == pytest.approx(0.10)

    def test_empty_actual(self):
        assert ctf_ratio(make_model({"a": 1}), make_model({})) == 0.0

    def test_monotone_in_vocabulary(self):
        actual = make_model({"a": 50, "b": 30, "c": 20})
        smaller = make_model({"a": 1})
        larger = make_model({"a": 1, "b": 1})
        assert ctf_ratio(larger, actual) > ctf_ratio(smaller, actual)


class TestRankTerms:
    def test_rank_one_is_most_frequent(self):
        model = make_model({"hi": 10, "mid": 5, "lo": 1})
        ranks = rank_terms(model, ["hi", "mid", "lo"], metric="df")
        assert ranks.tolist() == [1.0, 2.0, 3.0]

    def test_average_tie_method(self):
        model = make_model({"a": 5, "b": 5, "c": 1})
        ranks = rank_terms(model, ["a", "b", "c"], metric="df", method="average")
        assert ranks.tolist() == [1.5, 1.5, 3.0]

    def test_min_tie_method(self):
        model = make_model({"a": 5, "b": 5, "c": 1})
        ranks = rank_terms(model, ["a", "b", "c"], metric="df", method="min")
        assert ranks.tolist() == [1.0, 1.0, 3.0]

    def test_ordinal_method_breaks_ties_by_term(self):
        model = make_model({"b": 5, "a": 5})
        ranks = rank_terms(model, ["b", "a"], metric="df", method="ordinal")
        assert ranks.tolist() == [2.0, 1.0]

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            rank_terms(make_model({"a": 1}), ["a"], method="dense")

    def test_invalid_metric(self):
        with pytest.raises(ValueError):
            rank_terms(make_model({"a": 1}), ["a"], metric="idf")


class TestSpearman:
    def test_identical_rankings(self):
        model = make_model({"a": 10, "b": 5, "c": 2})
        assert spearman_rank_correlation(model, model) == pytest.approx(1.0)

    def test_reversed_rankings(self):
        learned = make_model({"a": 1, "b": 2, "c": 3})
        actual = make_model({"a": 3, "b": 2, "c": 1})
        assert spearman_rank_correlation(learned, actual) == pytest.approx(-1.0)

    def test_matches_scipy_with_ties(self):
        rng = np.random.default_rng(0)
        terms = [f"t{i}" for i in range(60)]
        learned_freqs = rng.integers(1, 12, size=60)
        actual_freqs = rng.integers(1, 12, size=60)
        learned = make_model({t: int(f) for t, f in zip(terms, learned_freqs)})
        actual = make_model({t: int(f) for t, f in zip(terms, actual_freqs)})
        ours = spearman_rank_correlation(learned, actual)
        # scipy ranks ascending; correlation is invariant to direction
        # as long as both sides use the same one.
        reference = scipy_stats.spearmanr(learned_freqs, actual_freqs).statistic
        assert ours == pytest.approx(reference, abs=1e-12)

    def test_textbook_formula_without_ties(self):
        learned = make_model({"a": 40, "b": 30, "c": 20, "d": 10})
        actual = make_model({"a": 40, "b": 20, "c": 30, "d": 10})
        # b and c swap: d² sum = 2, n = 4 → 1 - 12/60 = 0.8
        value = spearman_rank_correlation(learned, actual, tie_correction=False)
        assert value == pytest.approx(0.8)

    def test_no_common_terms(self):
        assert spearman_rank_correlation(make_model({"a": 1}), make_model({"b": 1})) == 0.0

    def test_single_common_term(self):
        learned = make_model({"a": 1, "x": 2})
        actual = make_model({"a": 5, "y": 2})
        assert spearman_rank_correlation(learned, actual) == 1.0

    def test_constant_ranking_returns_zero(self):
        learned = make_model({"a": 3, "b": 3, "c": 3})
        actual = make_model({"a": 5, "b": 2, "c": 1})
        assert spearman_rank_correlation(learned, actual) == 0.0

    def test_only_common_terms_compared(self):
        learned = make_model({"a": 10, "b": 5, "x": 99, "y": 98})
        actual = make_model({"a": 10, "b": 5, "p": 99})
        assert spearman_rank_correlation(learned, actual) == pytest.approx(1.0)


class TestRdiff:
    def test_paper_swap_example(self):
        # "given two rankings of 100 terms that are identical except
        # [two terms swap the 4th and 5th ranks], rdiff = (1/(100*100))
        # * (2) = 0.0002".
        terms = {f"t{i:03d}": 1000 - i for i in range(100)}
        first = make_model(dict(terms))
        swapped = dict(terms)
        swapped["t003"], swapped["t004"] = swapped["t004"], swapped["t003"]
        second = make_model(swapped)
        assert rdiff(first, second) == pytest.approx(0.0002)

    def test_identical_models_zero(self):
        model = make_model({"a": 9, "b": 4, "c": 1})
        assert rdiff(model, model) == 0.0

    def test_symmetry(self):
        first = make_model({"a": 9, "b": 4, "c": 1, "d": 7})
        second = make_model({"a": 1, "b": 9, "c": 4, "d": 2})
        assert rdiff(first, second) == pytest.approx(rdiff(second, first))

    def test_reversed_ranking_upper_range(self):
        # With distinct ranks, a full reversal gives the metric's
        # maximum, which approaches 0.5 as n grows.
        n = 10
        first = make_model({f"t{i}": 100 - i for i in range(n)})
        second = make_model({f"t{i}": i + 1 for i in range(n)})
        assert rdiff(first, second) == pytest.approx(0.5, abs=0.05)

    def test_no_common_terms(self):
        assert rdiff(make_model({"a": 1}), make_model({"b": 1})) == 0.0

    def test_bounded_zero_one(self):
        rng = np.random.default_rng(3)
        for _ in range(5):
            first = make_model({f"t{i}": int(rng.integers(1, 5)) for i in range(30)})
            second = make_model({f"t{i}": int(rng.integers(1, 5)) for i in range(30)})
            value = rdiff(first, second)
            assert 0.0 <= value <= 1.0
