"""Unit tests for repro.index.positions and phrase search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus import Corpus, Document
from repro.index import DatabaseServer, InvertedIndex, PositionalIndex, SearchEngine
from repro.index.positions import PositionalPostingList
from repro.text import Analyzer


@pytest.fixture(scope="module")
def corpus() -> Corpus:
    return Corpus(
        [
            Document(doc_id="a", text="white house press office"),
            Document(doc_id="b", text="white painted house garden"),
            Document(doc_id="c", text="white house white house"),
            Document(doc_id="d", text="house white"),
            Document(doc_id="e", text="green garden gnome"),
        ]
    )


@pytest.fixture(scope="module")
def positional(corpus) -> PositionalIndex:
    return PositionalIndex(corpus, Analyzer.raw())


class TestPositionalPostings:
    def test_positions_recorded(self, positional):
        posting = positional.postings("white")
        assert posting is not None
        assert posting.doc_indices.tolist() == [0, 1, 2, 3]
        # doc c: positions 0 and 2.
        assert posting.positions[2].tolist() == [0, 2]

    def test_absent_term(self, positional):
        assert positional.postings("zebra") is None

    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            PositionalPostingList(
                doc_indices=np.arange(2), positions=(np.array([0]),)
            )


class TestPhrasePostings:
    def test_adjacent_match(self, positional):
        posting = positional.phrase_postings(["white", "house"])
        assert posting.doc_indices.tolist() == [0, 2]

    def test_phrase_counts(self, positional):
        posting = positional.phrase_postings(["white", "house"])
        assert posting.term_frequencies.tolist() == [1, 2]  # doc c matches twice

    def test_order_matters(self, positional):
        posting = positional.phrase_postings(["house", "white"])
        assert posting.doc_indices.tolist() == [2, 3]  # "house white" in c and d

    def test_gap_does_not_match(self, positional):
        # "white painted house": white..house not adjacent in doc b.
        posting = positional.phrase_postings(["white", "house"])
        assert 1 not in posting.doc_indices.tolist()

    def test_three_word_phrase(self, positional):
        posting = positional.phrase_postings(["white", "house", "press"])
        assert posting.doc_indices.tolist() == [0]

    def test_unknown_member_empty(self, positional):
        assert len(positional.phrase_postings(["white", "zebra"])) == 0

    def test_empty_phrase(self, positional):
        assert len(positional.phrase_postings([])) == 0


class TestEnginePhraseSearch:
    def test_phrase_search_ranks_by_count(self, corpus):
        engine = SearchEngine(InvertedIndex(corpus, Analyzer.raw()))
        results = engine.search_phrase("white house", n=5)
        assert [r.doc_id for r in results] == ["c", "a"]

    def test_single_word_phrase_falls_back(self, corpus):
        engine = SearchEngine(InvertedIndex(corpus, Analyzer.raw()))
        assert engine.search_phrase("white", n=2) == engine.search("white", n=2)

    def test_phrase_through_stemmed_index(self):
        stemmed = Corpus(
            [
                Document(doc_id="x", text="the running dogs barked"),
                Document(doc_id="y", text="dogs running around"),
            ]
        )
        engine = SearchEngine(InvertedIndex(stemmed))  # inquery-style
        results = engine.search_phrase("running dog", n=5)
        assert [r.doc_id for r in results] == ["x"]

    def test_stopwords_removed_before_adjacency(self):
        stemmed = Corpus([Document(doc_id="x", text="bread and butter")])
        engine = SearchEngine(InvertedIndex(stemmed))
        # "and" is a stopword: bread/butter are adjacent index terms.
        assert engine.search_phrase("bread butter", n=1)

    def test_invalid_n(self, corpus):
        engine = SearchEngine(InvertedIndex(corpus, Analyzer.raw()))
        with pytest.raises(ValueError):
            engine.search_phrase("white house", n=0)


class TestServerQuotedQueries:
    def test_quoted_query_is_phrase(self, corpus):
        server = DatabaseServer(corpus, analyzer=Analyzer.raw())
        quoted = [d.doc_id for d in server.run_query('"white house"', max_docs=5)]
        unquoted = [d.doc_id for d in server.run_query("white house", max_docs=5)]
        assert quoted == ["c", "a"]
        assert set(quoted) < set(unquoted)

    def test_quoted_query_counts_as_query(self, corpus):
        server = DatabaseServer(corpus, analyzer=Analyzer.raw())
        server.run_query('"white house"', max_docs=5)
        assert server.costs.queries_run == 1

    def test_empty_quotes(self, corpus):
        server = DatabaseServer(corpus, analyzer=Analyzer.raw())
        assert server.run_query('""', max_docs=5) == []
