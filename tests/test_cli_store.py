"""End-to-end CLI tests for persistence: --checkpoint, --models, `repro store`.

The crash leg runs in a real subprocess: ``--crash-after-queries`` kills
the sampler with ``os._exit`` (no cleanup, like SIGKILL at a query
boundary), and the resumed in-process run must produce a model file
bit-identical to an uninterrupted run — the PR's acceptance criterion,
exercised through the same entry points an operator would use.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(scope="module")
def corpus(tmp_path_factory) -> Path:
    path = tmp_path_factory.mktemp("clistore") / "corpus.jsonl"
    main(["generate", "--profile", "cacm", "--scale", "0.05", "--seed", "9",
          "-o", str(path)])
    return path


@pytest.fixture(scope="module")
def two_corpora(tmp_path_factory) -> list[Path]:
    import json

    directory = tmp_path_factory.mktemp("clifed")
    paths = []
    for name, profile, seed in (("newsdb", "wsj88", 1), ("scidb", "cacm", 2)):
        raw = directory / f"raw-{name}.jsonl"
        main(["generate", "--profile", profile, "--scale", "0.03", "--seed",
              str(seed), "-o", str(raw)])
        path = directory / f"{name}.jsonl"
        with raw.open() as src, path.open("w") as dst:
            for index, line in enumerate(src):
                record = json.loads(line)
                record["doc_id"] = f"{name}-{index}"
                dst.write(json.dumps(record) + "\n")
        paths.append(path)
    return paths


@pytest.fixture(scope="module")
def frequent_term(two_corpora) -> str:
    from repro.corpus import read_jsonl
    from repro.index import DatabaseServer

    server = DatabaseServer(read_jsonl(two_corpora[0]))
    return server.actual_language_model().top_terms(1, "ctf")[0].term


def run_cli(argv: list[str]) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )


class TestSampleCheckpoint:
    def test_crash_then_resume_is_bit_identical(self, corpus, tmp_path, capsys):
        base = ["sample", str(corpus), "--max-docs", "60", "--seed", "4",
                "--checkpoint-every", "3"]

        full = tmp_path / "full.lm"
        assert main([*base, "-o", str(full),
                     "--checkpoint", str(tmp_path / "ck-full")]) == 0
        capsys.readouterr()

        # Kill the run mid-flight at a query boundary (real subprocess:
        # os._exit skips every cleanup path, like SIGKILL).
        resumed = tmp_path / "resumed.lm"
        crash_args = [*base, "-o", str(resumed),
                      "--checkpoint", str(tmp_path / "ck"),
                      "--crash-after-queries", "8"]
        crashed = run_cli(crash_args)
        assert crashed.returncode == 3
        assert "simulated crash after 8 queries" in crashed.stderr
        assert not resumed.exists()

        # Re-run the same command without the crash flag: it resumes
        # from the last durable checkpoint and finishes the job.
        assert main([*base, "-o", str(resumed),
                     "--checkpoint", str(tmp_path / "ck")]) == 0
        out = capsys.readouterr().out
        assert "resumed from checkpoint:" in out
        assert resumed.read_bytes() == full.read_bytes()

    def test_completed_checkpoint_reruns_as_noop(self, corpus, tmp_path, capsys):
        base = ["sample", str(corpus), "--max-docs", "40", "--seed", "4",
                "--checkpoint", str(tmp_path / "ck"), "-o",
                str(tmp_path / "model.lm")]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert main(base) == 0
        second = capsys.readouterr().out
        assert "resumed from checkpoint: 40 documents" in second
        # No new sampling work: both runs report the same totals.
        assert first.splitlines()[-1] == second.splitlines()[-1]

    def test_mismatched_resume_rejected(self, corpus, tmp_path, capsys):
        checkpoint = str(tmp_path / "ck")
        assert main(["sample", str(corpus), "--max-docs", "30", "--seed", "4",
                     "--checkpoint", checkpoint,
                     "-o", str(tmp_path / "a.lm")]) == 0
        capsys.readouterr()
        code = main(["sample", str(corpus), "--max-docs", "30", "--seed", "5",
                     "--checkpoint", checkpoint, "-o", str(tmp_path / "b.lm")])
        assert code == 2
        assert "cannot resume" in capsys.readouterr().err

    def test_bad_checkpoint_every_rejected(self, corpus, tmp_path, capsys):
        code = main(["sample", str(corpus), "--checkpoint", str(tmp_path / "ck"),
                     "--checkpoint-every", "0", "-o", str(tmp_path / "m.lm")])
        assert code == 2
        assert "--checkpoint-every" in capsys.readouterr().err


class TestFederateStore:
    def test_save_then_warm_start(self, two_corpora, frequent_term, tmp_path, capsys):
        store = str(tmp_path / "store")
        argv = [str(p) for p in two_corpora]
        assert main(["federate", *argv, "--query", frequent_term, "--sample-docs",
                     "40", "--save-models", store]) == 0
        cold = capsys.readouterr().out
        assert f"saved 2 models to {store}" in cold

        assert main(["federate", *argv, "--query", frequent_term,
                     "--models", store]) == 0
        warm = capsys.readouterr().out
        assert "warm-started 2 models from" in warm
        # Same models → same ranking and results (each output's first
        # line is its own status: "saved ..." vs "warm-started ...").
        assert warm.splitlines()[1:] == cold.splitlines()[1:]

    def test_warm_start_missing_database_fails(self, two_corpora, frequent_term,
                                               corpus, tmp_path, capsys):
        store = str(tmp_path / "store")
        argv = [str(p) for p in two_corpora]
        assert main(["federate", *argv, "--query", frequent_term, "--sample-docs",
                     "40", "--save-models", store]) == 0
        capsys.readouterr()
        code = main(["federate", str(two_corpora[0]), str(corpus),
                     "--query", frequent_term, "--models", store])
        assert code == 2
        assert "missing models" in capsys.readouterr().err


class TestStoreCommand:
    @pytest.fixture()
    def populated_store(self, two_corpora, frequent_term, tmp_path, capsys) -> str:
        store = str(tmp_path / "store")
        assert main(["federate", *[str(p) for p in two_corpora], "--query",
                     frequent_term, "--sample-docs", "40", "--save-models",
                     store]) == 0
        capsys.readouterr()
        return store

    def test_lists_manifest(self, populated_store, capsys):
        assert main(["store", populated_store]) == 0
        out = capsys.readouterr().out
        assert "Model store" in out
        assert "newsdb" in out and "scidb" in out

    def test_verify_healthy(self, populated_store, capsys):
        assert main(["store", populated_store, "--verify"]) == 0
        assert "store ok" in capsys.readouterr().out

    def test_verify_detects_corruption(self, populated_store, capsys):
        from repro.store import ModelStore

        store = ModelStore(populated_store)
        entry = next(iter(store.read_manifest().models.values()))
        path = store.root / entry.file
        path.write_text(path.read_text() + "extra 1 1\n")
        assert main(["store", populated_store, "--verify"]) == 1
        assert "INTEGRITY" in capsys.readouterr().err

    def test_missing_store(self, tmp_path, capsys):
        assert main(["store", str(tmp_path / "nope")]) == 2
        assert "no model store" in capsys.readouterr().err


class TestStorePrune:
    @pytest.fixture()
    def populated_store(self, two_corpora, frequent_term, tmp_path, capsys) -> str:
        store = str(tmp_path / "store")
        assert main(["federate", *[str(p) for p in two_corpora], "--query",
                     frequent_term, "--sample-docs", "40", "--save-models",
                     store]) == 0
        capsys.readouterr()
        return store

    def test_prune_removes_orphans(self, populated_store, capsys):
        (Path(populated_store) / "models" / "stray.lm").write_text("junk")
        assert main(["store", populated_store, "--prune"]) == 0
        out = capsys.readouterr().out
        assert "pruned 1 orphan files: models/stray.lm" in out
        assert not (Path(populated_store) / "models" / "stray.lm").exists()
        # A second prune finds nothing.
        assert main(["store", populated_store, "--prune"]) == 0
        assert "nothing to prune" in capsys.readouterr().out

    def test_prune_refuses_unverified_store(self, populated_store, capsys):
        from repro.store import ModelStore

        (Path(populated_store) / "models" / "stray.lm").write_text("junk")
        store = ModelStore(populated_store)
        entry = next(iter(store.read_manifest().models.values()))
        path = store.root / entry.file
        path.write_text(path.read_text() + "extra 1 1\n")
        assert main(["store", populated_store, "--prune"]) == 1
        err = capsys.readouterr().err
        assert "INTEGRITY" in err
        assert "refusing to prune" in err
        # Nothing was deleted, the orphan included.
        assert (Path(populated_store) / "models" / "stray.lm").exists()

    def test_prune_sharded_store(self, populated_store, tmp_path, capsys):
        sharded = str(tmp_path / "sharded")
        assert main(["fleet", "migrate", populated_store, sharded,
                     "--num-shards", "4"]) == 0
        capsys.readouterr()
        store_dir = Path(sharded) / "shards"
        shard = next(d for d in sorted(store_dir.iterdir()) if d.is_dir())
        (shard / "models" / "stray.lm").write_text("junk")
        assert main(["store", sharded, "--prune"]) == 0
        out = capsys.readouterr().out
        assert f"shards/{shard.name}/models/stray.lm" in out
        assert not (shard / "models" / "stray.lm").exists()
