"""Unit tests for repro.text.stopwords."""

from __future__ import annotations

import pytest

from repro.text.stopwords import INQUERY_STOPWORDS, is_stopword


class TestStoplist:
    def test_exactly_418_words(self):
        # The paper: "the default stopword list of the Inquery IR system,
        # which contained 418 very frequent and/or closed-class words".
        assert len(INQUERY_STOPWORDS) == 418

    def test_all_lowercase(self):
        assert all(word == word.lower() for word in INQUERY_STOPWORDS)

    def test_no_whitespace_inside_words(self):
        assert all(" " not in word for word in INQUERY_STOPWORDS)

    @pytest.mark.parametrize("word", ["the", "and", "a", "of", "is", "was", "which"])
    def test_core_function_words_present(self, word):
        assert word in INQUERY_STOPWORDS

    @pytest.mark.parametrize("word", ["apple", "database", "query", "microsoft"])
    def test_content_words_absent(self, word):
        assert word not in INQUERY_STOPWORDS


class TestIsStopword:
    def test_case_insensitive(self):
        assert is_stopword("The")
        assert is_stopword("THE")

    def test_non_stopword(self):
        assert not is_stopword("apple")

    def test_empty_string(self):
        assert not is_stopword("")
