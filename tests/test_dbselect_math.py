"""Hand-verified numerical tests for the selection algorithms' math."""

from __future__ import annotations

import math

import pytest

from repro.dbselect import CoriSelector, KlSelector, VGlossSelector
from repro.lm import LanguageModel


def db(term_stats: dict[str, tuple[int, int]], docs: int, tokens: int) -> LanguageModel:
    model = LanguageModel()
    for term, (df, ctf) in term_stats.items():
        model.add_term(term, df=df, ctf=ctf)
    model.documents_seen = docs
    model.tokens_seen = tokens
    return model


class TestCoriFormula:
    def test_belief_value_by_hand(self):
        # Two databases, equal word counts (cw = mean_cw = 1000).
        # Term "x": db a has df=30, db b lacks it → cf = 1.
        models = {
            "a": db({"x": (30, 60)}, docs=100, tokens=1000),
            "b": db({"y": (10, 10)}, docs=100, tokens=1000),
        }
        selector = CoriSelector()
        ranking = selector.rank("x", models)
        t_component = 30 / (30 + 50 + 150 * 1000 / 1000)  # = 30/230
        i_component = math.log((2 + 0.5) / 1) / math.log(2 + 1.0)
        expected = 0.4 + 0.6 * t_component * i_component
        score_a = dict((e.name, e.score) for e in ranking.entries)["a"]
        assert score_a == pytest.approx(expected)

    def test_term_in_every_database_gets_low_idf(self):
        models = {
            "a": db({"x": (30, 60)}, docs=100, tokens=1000),
            "b": db({"x": (30, 60)}, docs=100, tokens=1000),
        }
        ranking = CoriSelector().rank("x", models)
        # cf = C = 2: I = log(2.5/2)/log(3), small but positive.
        expected_i = math.log(2.5 / 2) / math.log(3.0)
        t_component = 30 / 230
        expected = 0.4 + 0.6 * t_component * expected_i
        for entry in ranking.entries:
            assert entry.score == pytest.approx(expected)

    def test_larger_database_penalised_at_equal_df(self):
        # Same df, but db a is 10x wordier: its T component shrinks.
        models = {
            "a": db({"x": (30, 60)}, docs=100, tokens=10_000),
            "b": db({"x": (30, 60)}, docs=100, tokens=1_000),
        }
        ranking = CoriSelector().rank("x", models)
        assert ranking.names[0] == "b"

    def test_query_score_is_mean_over_terms(self):
        models = {
            "a": db({"x": (30, 60), "y": (30, 60)}, docs=100, tokens=1000),
            "b": db({"z": (1, 1)}, docs=100, tokens=1000),
        }
        selector = CoriSelector()
        single = dict(
            (e.name, e.score) for e in selector.rank("x", models).entries
        )["a"]
        double = dict(
            (e.name, e.score) for e in selector.rank("x y", models).entries
        )["a"]
        assert double == pytest.approx(single)  # identical beliefs average


class TestVGlossFormula:
    def test_score_is_df_times_avg_tf(self):
        models = {
            "a": db({"x": (10, 40)}, docs=100, tokens=1000),  # avg_tf = 4
            "b": db({"x": (20, 20)}, docs=100, tokens=1000),  # avg_tf = 1
        }
        ranking = VGlossSelector().rank("x", models)
        scores = dict((e.name, e.score) for e in ranking.entries)
        assert scores["a"] == pytest.approx(40.0)  # 10 * 4
        assert scores["b"] == pytest.approx(20.0)  # 20 * 1
        assert ranking.names[0] == "a"


class TestKlFormula:
    def test_log_likelihood_by_hand(self):
        models = {
            "a": db({"x": (50, 100)}, docs=100, tokens=1000),
            "b": db({"y": (50, 100)}, docs=100, tokens=1000),
        }
        selector = KlSelector(smoothing=0.5)
        ranking = selector.rank("x", models)
        # background: ctf_x = 100 over 2000 tokens → 0.05.
        p_a = 0.5 * (100 / 1000) + 0.5 * 0.05
        p_b = 0.5 * 0.0 + 0.5 * 0.05
        scores = dict((e.name, e.score) for e in ranking.entries)
        assert scores["a"] == pytest.approx(math.log(p_a))
        assert scores["b"] == pytest.approx(math.log(p_b))
        assert ranking.names[0] == "a"

    def test_floor_prevents_log_zero(self):
        models = {
            "a": db({"x": (1, 1)}, docs=10, tokens=10),
            "b": db({"y": (1, 1)}, docs=10, tokens=10),
        }
        ranking = KlSelector().rank("zzz", models)
        assert all(math.isfinite(entry.score) for entry in ranking.entries)
