"""The selector registry: factory construction and its guarantees.

Pins the redesigned selection API: every registered selector is
constructible through :func:`make_selector`, factory-built selectors
rank identically to hand-built ones, and the factory rejects the
mistakes the old hand-wiring made easy (wrong params family, missing
ReDDE samples).
"""

from __future__ import annotations

import pytest

from repro.corpus import Document
from repro.dbselect import (
    BGlossSelector,
    CoriParameters,
    CoriSelector,
    GlossParameters,
    KlParameters,
    KlSelector,
    ReddeParameters,
    ReddeSelector,
    VGlossSelector,
    make_selector,
    selector_names,
)
from repro.dbselect.registry import SELECTOR_REGISTRY
from repro.lm import LanguageModel


def make_db(stats: dict[str, tuple[int, int]], docs: int, tokens: int) -> LanguageModel:
    """term → (df, ctf)."""
    model = LanguageModel()
    for term, (df, ctf) in stats.items():
        model.add_term(term, df=df, ctf=ctf)
    model.documents_seen = docs
    model.tokens_seen = tokens
    return model


@pytest.fixture
def models() -> dict[str, LanguageModel]:
    return {
        "sports": make_db(
            {"football": (80, 200), "team": (60, 90), "market": (5, 5)},
            docs=100,
            tokens=10_000,
        ),
        "finance": make_db(
            {"market": (70, 180), "stock": (50, 120), "team": (10, 12)},
            docs=100,
            tokens=10_000,
        ),
    }


@pytest.fixture
def samples() -> dict[str, list[Document]]:
    return {
        "sports": [
            Document(doc_id="s1", text="football team wins the football match"),
            Document(doc_id="s2", text="the team trains for the season"),
        ],
        "finance": [
            Document(doc_id="f1", text="stock market rises on trading news"),
            Document(doc_id="f2", text="market analysts watch the stock index"),
        ],
    }


class TestRegistrySurface:
    def test_names_cover_all_five_algorithms(self):
        assert selector_names() == ("bgloss", "cori", "kl", "redde", "vgloss")

    def test_registry_maps_to_expected_classes(self):
        assert SELECTOR_REGISTRY["cori"] == (CoriSelector, CoriParameters)
        assert SELECTOR_REGISTRY["kl"] == (KlSelector, KlParameters)
        assert SELECTOR_REGISTRY["bgloss"] == (BGlossSelector, GlossParameters)
        assert SELECTOR_REGISTRY["vgloss"] == (VGlossSelector, GlossParameters)
        assert SELECTOR_REGISTRY["redde"] == (ReddeSelector, ReddeParameters)

    def test_every_name_constructs(self, samples):
        for name in selector_names():
            kwargs = {"samples": samples} if name == "redde" else {}
            selector, _ = SELECTOR_REGISTRY[name]
            assert isinstance(make_selector(name, **kwargs), selector)


class TestFactoryEquivalence:
    @pytest.mark.parametrize(
        ("name", "direct"),
        [
            ("cori", CoriSelector),
            ("kl", KlSelector),
            ("bgloss", BGlossSelector),
            ("vgloss", VGlossSelector),
        ],
    )
    def test_model_selectors_rank_identically(self, name, direct, models):
        factory_made = make_selector(name)
        hand_made = direct()
        for query in ("football", "market stock", "team market"):
            assert (
                factory_made.rank(query, models).entries
                == hand_made.rank(query, models).entries
            )

    def test_custom_params_flow_through(self, models):
        params = CoriParameters(default_belief=0.6)
        factory_made = make_selector("cori", params)
        hand_made = CoriSelector(params)
        ranking = factory_made.rank("football", models)
        assert ranking.entries == hand_made.rank("football", models).entries
        assert factory_made.params == params

    def test_redde_ranks_identically(self, samples):
        params = ReddeParameters(top_n=3)
        factory_made = make_selector("redde", params, samples=samples)
        hand_made = ReddeSelector(samples, params)
        assert (
            factory_made.rank("football team").entries
            == hand_made.rank("football team").entries
        )


class TestFactoryRejections:
    def test_unknown_name_lists_the_registry(self):
        with pytest.raises(ValueError, match="bgloss, cori, kl, redde, vgloss"):
            make_selector("pagerank")

    def test_wrong_params_family(self):
        with pytest.raises(TypeError, match="CoriParameters"):
            make_selector("cori", KlParameters())

    def test_redde_requires_samples(self):
        with pytest.raises(ValueError, match="samples"):
            make_selector("redde")

    def test_model_selectors_reject_redde_inputs(self, samples):
        with pytest.raises(ValueError, match="samples"):
            make_selector("cori", samples=samples)
        with pytest.raises(ValueError, match="samples"):
            make_selector("kl", estimated_sizes={"sports": 10.0})
