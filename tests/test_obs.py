"""Unit tests for the repro.obs observability layer."""

from __future__ import annotations

import io

import pytest

from repro.index.server import DatabaseServer
from repro.obs import (
    NULL_RECORDER,
    Clock,
    Counter,
    MetricSet,
    NullRecorder,
    Timer,
    TraceRecorder,
    WallClock,
    format_trace_report,
    read_trace,
    summarize_trace,
)
from repro.obs.trace import TRACE_SCHEMA
from repro.sampling.sampler import QueryBasedSampler, SamplerConfig
from repro.sampling.selection import ListBootstrap
from repro.sampling.stopping import MaxDocuments
from repro.sampling.transport import (
    PermanentServerError,
    ResilientDatabase,
    RetryPolicy,
    SimulatedClock,
    TransientServerError,
    UnreliableServer,
)


class TestMetrics:
    def test_counter_grows(self):
        counter = Counter("queries")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("queries").add(-1)

    def test_timer_aggregates(self):
        timer = Timer("query")
        for seconds in (0.2, 0.1, 0.6):
            timer.observe(seconds)
        assert timer.count == 3
        assert timer.total == pytest.approx(0.9)
        assert timer.min == pytest.approx(0.1)
        assert timer.max == pytest.approx(0.6)
        assert timer.mean == pytest.approx(0.3)

    def test_timer_empty_mean_is_zero(self):
        assert Timer("query").mean == 0.0

    def test_timer_rejects_negative(self):
        with pytest.raises(ValueError):
            Timer("query").observe(-0.1)

    def test_metric_set_lazy_registry(self):
        metrics = MetricSet()
        metrics.count("queries", 3)
        metrics.timer("query").observe(0.5)
        assert metrics.counter("queries").value == 3
        assert [c.name for c in metrics.counters()] == ["queries"]
        assert [t.name for t in metrics.timers()] == ["query"]

    def test_update_from_bridges_query_costs(self, tiny_corpus):
        server = DatabaseServer(tiny_corpus)
        server.run_query("apple", max_docs=2)
        server.run_query("zebra", max_docs=2)
        metrics = MetricSet()
        metrics.update_from(server.costs.as_dict(), prefix="server.")
        assert metrics.counter("server.queries_run").value == 2
        assert metrics.counter("server.failed_queries").value == 1
        assert metrics.counter("server.bytes_returned").value > 0

    def test_snapshot_shape(self):
        metrics = MetricSet()
        metrics.count("queries")
        metrics.timer("query").observe(1.0)
        snapshot = metrics.snapshot()
        assert snapshot["counters"] == {"queries": 1}
        assert snapshot["timers"]["query"]["count"] == 1


class TestClocks:
    def test_wall_clock_advances(self):
        clock = WallClock()
        first = clock.now
        assert clock.now >= first >= 0.0

    def test_simulated_clock_satisfies_protocol(self):
        assert isinstance(SimulatedClock(), Clock)
        assert isinstance(WallClock(), Clock)


class TestNullRecorder:
    def test_disabled_and_shared(self):
        assert NULL_RECORDER.enabled is False
        assert isinstance(NULL_RECORDER, NullRecorder)
        # One shared context object — no per-call allocation.
        assert NULL_RECORDER.span("a") is NULL_RECORDER.span("b")

    def test_span_absorbs_attributes(self):
        with NULL_RECORDER.span("query", database="x") as span:
            span.set(documents_returned=4)

    def test_exceptions_propagate(self):
        with pytest.raises(RuntimeError):
            with NULL_RECORDER.span("query"):
                raise RuntimeError("boom")

    def test_event_and_count_are_noops(self):
        NULL_RECORDER.event("retry", attempt=1)
        NULL_RECORDER.count("queries")

    def test_observe_is_a_noop(self):
        NULL_RECORDER.observe("backend_search", 0.25)


class TestTraceRecorder:
    def test_span_records_timing_on_simulated_clock(self):
        clock = SimulatedClock()
        recorder = TraceRecorder(clock=clock)
        with recorder.span("query", database="db") as span:
            clock.sleep(2.0)
            span.set(documents_returned=3)
        assert len(recorder.spans) == 1
        recorded = recorder.spans[0]
        assert recorded.duration == pytest.approx(2.0)
        assert recorded.status == "ok"
        assert recorded.attributes["documents_returned"] == 3
        assert recorder.metrics.timer("query").count == 1

    def test_spans_nest_via_parent_id(self):
        recorder = TraceRecorder(clock=SimulatedClock())
        with recorder.span("sample_run"):
            with recorder.span("query"):
                pass
        outer = next(s for s in recorder.spans if s.name == "sample_run")
        inner = next(s for s in recorder.spans if s.name == "query")
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id

    def test_exception_marks_span_error(self):
        recorder = TraceRecorder(clock=SimulatedClock())
        with pytest.raises(RuntimeError):
            with recorder.span("query"):
                raise RuntimeError("boom")
        span = recorder.spans[0]
        assert span.status == "error"
        assert span.attributes["error"] == "RuntimeError"
        assert recorder.metrics.counter("query.errors").value == 1

    def test_events_count_and_nest(self):
        recorder = TraceRecorder(clock=SimulatedClock())
        with recorder.span("sample_run"):
            recorder.event("retry", attempt=1, delay=0.5)
        assert recorder.metrics.counter("retry").value == 1
        event = recorder.events[0]
        assert event["name"] == "retry"
        assert event["parent_id"] == recorder.spans[0].span_id

    def test_observe_feeds_named_timer(self):
        recorder = TraceRecorder(clock=SimulatedClock())
        recorder.observe("backend_search", 0.25)
        recorder.observe("backend_search", 0.35)
        timer = recorder.metrics.timer("backend_search")
        assert timer.count == 2
        assert timer.total == pytest.approx(0.6)

    def test_records_interleave_in_seq_order(self):
        recorder = TraceRecorder(clock=SimulatedClock())
        recorder.event("first")
        with recorder.span("query"):
            pass
        recorder.event("last")
        names = [record["name"] for record in recorder.records()]
        assert names == ["first", "query", "last"]

    def test_write_jsonl_round_trips(self, tmp_path):
        clock = SimulatedClock()
        recorder = TraceRecorder(clock=clock)
        with recorder.span("query", database="db"):
            clock.sleep(1.0)
        recorder.event("retry", database="db", delay=0.5)
        path = str(tmp_path / "trace.jsonl")
        lines = recorder.write_jsonl(path)
        records = read_trace(path)
        assert lines == len(records) == 3
        meta = records[0]
        assert meta["type"] == "meta"
        assert meta["schema"] == TRACE_SCHEMA
        assert meta["clock"] == "SimulatedClock"
        assert {r["type"] for r in records[1:]} == {"span", "event"}

    def test_write_jsonl_accepts_handle(self):
        recorder = TraceRecorder(clock=SimulatedClock())
        with recorder.span("query"):
            pass
        handle = io.StringIO()
        assert recorder.write_jsonl(handle) == 2

    def test_read_trace_reports_malformed_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta"}\nnot json\n', encoding="utf-8")
        with pytest.raises(ValueError, match="line 2"):
            read_trace(str(path))


class TestSamplerTracing:
    """The acceptance criterion: one span per executed query."""

    def _run(self, server, recorder, max_docs=6):
        sampler = QueryBasedSampler(
            server,
            bootstrap=ListBootstrap(["apple", "honey", "bees", "sugar", "orchard"]),
            stopping=MaxDocuments(max_docs),
            config=SamplerConfig(docs_per_query=2),
            seed=0,
            recorder=recorder,
        )
        return sampler.run()

    def test_one_span_per_executed_query(self, tiny_server):
        recorder = TraceRecorder(clock=SimulatedClock())
        run = self._run(tiny_server, recorder)
        query_spans = [s for s in recorder.spans if s.name == "query"]
        assert run.queries_run > 0
        assert len(query_spans) == run.queries_run

    def test_run_span_wraps_query_spans(self, tiny_server):
        recorder = TraceRecorder(clock=SimulatedClock())
        run = self._run(tiny_server, recorder)
        run_spans = [s for s in recorder.spans if s.name == "sample_run"]
        assert len(run_spans) == 1
        run_span = run_spans[0]
        assert run_span.attributes["queries_run"] == run.queries_run
        assert run_span.attributes["documents_examined"] == run.documents_examined
        assert run_span.attributes["stop_reason"] == run.stop_reason
        for span in recorder.spans:
            if span.name == "query":
                assert span.parent_id == run_span.span_id

    def test_query_spans_carry_result_sizes(self, tiny_server):
        recorder = TraceRecorder(clock=SimulatedClock())
        run = self._run(tiny_server, recorder)
        returned = sum(
            s.attributes.get("documents_returned", 0)
            for s in recorder.spans
            if s.name == "query"
        )
        assert returned >= run.documents_examined

    def test_default_recorder_keeps_run_identical(self, tiny_server):
        traced = self._run(tiny_server, TraceRecorder(clock=SimulatedClock()))
        silent = self._run(tiny_server, NULL_RECORDER)
        assert traced.model.vocabulary == silent.model.vocabulary
        assert traced.model.total_ctf == silent.model.total_ctf
        assert traced.queries_run == silent.queries_run


class TestTransportTracing:
    def test_retry_events_recorded(self, tiny_server):
        clock = SimulatedClock()
        recorder = TraceRecorder(clock=clock)
        database = ResilientDatabase(
            UnreliableServer(tiny_server, transient_rate=1.0),
            policy=RetryPolicy(max_attempts=3, jitter=0.0),
            clock=clock,
            recorder=recorder,
        )
        with pytest.raises(TransientServerError):
            database.run_query("apple", max_docs=2)
        retries = [e for e in recorder.events if e["name"] == "retry"]
        assert len(retries) == 2  # 3 attempts -> 2 backoffs
        assert all(e["attributes"]["delay"] > 0 for e in retries)
        assert all(
            e["attributes"]["error"] == "TransientServerError" for e in retries
        )

    def test_circuit_open_and_reject_events(self, tiny_server):
        clock = SimulatedClock()
        recorder = TraceRecorder(clock=clock)
        database = ResilientDatabase(
            UnreliableServer(tiny_server, permanent_rate=1.0),
            policy=RetryPolicy(max_attempts=1),
            clock=clock,
            recorder=recorder,
        )
        for _ in range(3):  # default failure_threshold
            with pytest.raises(PermanentServerError):
                database.run_query("apple", max_docs=2)
        assert [e["name"] for e in recorder.events].count("circuit_opened") == 1
        with pytest.raises(Exception):
            database.run_query("apple", max_docs=2)
        assert [e["name"] for e in recorder.events].count("circuit_rejected") == 1


class TestTraceReport:
    def _traced_records(self, tiny_server):
        clock = SimulatedClock()
        recorder = TraceRecorder(clock=clock)
        database = ResilientDatabase(
            UnreliableServer(tiny_server, transient_rate=0.4, seed=5),
            policy=RetryPolicy(max_attempts=4, jitter=0.0),
            clock=clock,
            recorder=recorder,
        )
        sampler = QueryBasedSampler(
            database,
            bootstrap=ListBootstrap(["apple", "honey", "bees", "sugar", "orchard"]),
            stopping=MaxDocuments(6),
            config=SamplerConfig(docs_per_query=2),
            seed=0,
            recorder=recorder,
        )
        run = sampler.run()
        return run, recorder.records()

    def test_summarize_groups_by_database(self, tiny_server):
        run, records = self._traced_records(tiny_server)
        summaries = summarize_trace(records)
        assert set(summaries) == {"tiny"}
        summary = summaries["tiny"]
        assert summary.queries == run.queries_run
        assert summary.documents >= run.documents_examined
        assert summary.bytes_returned > 0
        retry_events = [
            r for r in records if r.get("type") == "event" and r.get("name") == "retry"
        ]
        assert summary.retries == len(retry_events)
        if retry_events:
            assert summary.backoff_seconds > 0

    def test_latency_quantiles(self, tiny_server):
        _, records = self._traced_records(tiny_server)
        summary = summarize_trace(records)["tiny"]
        assert len(summary.latencies) == summary.queries
        assert 0.0 <= summary.latency_quantile(0.5) <= summary.latency_quantile(0.95)
        assert summary.latency_quantile(1.0) == max(summary.latencies)

    def test_format_trace_report_renders_table(self, tiny_server):
        _, records = self._traced_records(tiny_server)
        report = format_trace_report(records)
        assert report.startswith("Trace: ")
        assert "tiny" in report
        assert "lat_p95" in report

    def test_format_trace_report_empty(self):
        assert "no query activity" in format_trace_report([])
