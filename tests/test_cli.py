"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.lm import load_language_model


@pytest.fixture(scope="module")
def corpus_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "corpus.jsonl"
    code = main(["generate", "--profile", "cacm", "--scale", "0.05", "--seed", "3",
                 "-o", str(path)])
    assert code == 0
    return path


@pytest.fixture(scope="module")
def model_path(tmp_path_factory, corpus_path):
    path = tmp_path_factory.mktemp("cli-model") / "model.lm"
    code = main(["sample", str(corpus_path), "-o", str(path), "--max-docs", "50",
                 "--seed", "1"])
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["generate", "--profile", "cacm", "-o", "x.jsonl"],
            ["stats", "c.jsonl", "--indexed"],
            ["search", "c.jsonl", "query terms", "-n", "3"],
            ["sample", "c.jsonl", "-o", "m.lm", "--strategy", "ctf"],
            ["sample", "c.jsonl", "-o", "m.lm", "--fault-rate", "0.2",
             "--max-retries", "2"],
            ["compare", "m.lm", "c.jsonl"],
            ["summarize", "m.lm", "--rank-by", "df", "-k", "10"],
            ["estimate-size", "c.jsonl", "--method", "schnabel"],
        ],
    )
    def test_all_subcommands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert args.command == argv[0]

    def test_bad_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--profile", "nope", "-o", "x"])


class TestGenerate:
    def test_writes_jsonl(self, corpus_path):
        lines = corpus_path.read_text().strip().splitlines()
        assert len(lines) == 160  # cacm at scale 0.05

    def test_deterministic(self, tmp_path, corpus_path):
        other = tmp_path / "again.jsonl"
        main(["generate", "--profile", "cacm", "--scale", "0.05", "--seed", "3",
              "-o", str(other)])
        assert other.read_text() == corpus_path.read_text()


class TestStats:
    def test_prints_table(self, corpus_path, capsys):
        assert main(["stats", str(corpus_path)]) == 0
        output = capsys.readouterr().out
        assert "size_documents" in output
        assert "160" in output

    def test_indexed_smaller(self, corpus_path, capsys):
        main(["stats", str(corpus_path)])
        raw_output = capsys.readouterr().out
        main(["stats", str(corpus_path), "--indexed"])
        indexed_output = capsys.readouterr().out
        assert raw_output != indexed_output


class TestSampleAndCompare:
    def test_model_file_valid(self, model_path):
        model = load_language_model(model_path)
        assert model.documents_seen == 50
        assert len(model) > 0

    def test_compare_reports_metrics(self, model_path, corpus_path, capsys):
        assert main(["compare", str(model_path), str(corpus_path)]) == 0
        output = capsys.readouterr().out
        assert "ctf_ratio" in output
        assert "spearman_rank_correlation" in output

    def test_frequency_strategy(self, corpus_path, tmp_path, capsys):
        out = tmp_path / "df.lm"
        assert main(["sample", str(corpus_path), "-o", str(out), "--max-docs", "30",
                     "--strategy", "df"]) == 0
        assert load_language_model(out).documents_seen == 30

    def test_explicit_bootstrap(self, corpus_path, tmp_path):
        out = tmp_path / "boot.lm"
        code = main(["sample", str(corpus_path), "-o", str(out), "--max-docs", "10",
                     "--bootstrap", "zzznope", "alsonothing"])
        # Bootstrap terms that match nothing: the run exhausts but the
        # command still succeeds with whatever it learned (possibly nothing).
        assert code == 0

    def test_fault_rate_samples_through_retries(self, corpus_path, tmp_path, capsys):
        out = tmp_path / "faulty.lm"
        code = main(["sample", str(corpus_path), "-o", str(out), "--max-docs", "40",
                     "--fault-rate", "0.3", "--max-retries", "5", "--seed", "2"])
        assert code == 0
        assert load_language_model(out).documents_seen == 40
        output = capsys.readouterr().out
        assert "transport:" in output
        assert "retries" in output

    def test_fault_rate_matches_fault_free_model(self, corpus_path, tmp_path, capsys):
        clean, faulty = tmp_path / "clean.lm", tmp_path / "faulty.lm"
        assert main(["sample", str(corpus_path), "-o", str(clean), "--max-docs", "30",
                     "--seed", "4"]) == 0
        assert main(["sample", str(corpus_path), "-o", str(faulty), "--max-docs", "30",
                     "--seed", "4", "--fault-rate", "0.2", "--max-retries", "6"]) == 0
        # Retries absorb the faults: the learned model is identical.
        assert load_language_model(faulty).vocabulary == load_language_model(clean).vocabulary

    def test_invalid_fault_rate_rejected(self, corpus_path, tmp_path):
        out = tmp_path / "x.lm"
        assert main(["sample", str(corpus_path), "-o", str(out),
                     "--fault-rate", "1.5"]) == 2
        assert main(["sample", str(corpus_path), "-o", str(out),
                     "--max-retries", "-1"]) == 2


class TestSummarize:
    def test_prints_grid(self, model_path, capsys):
        assert main(["summarize", str(model_path), "-k", "8", "--min-df", "1"]) == 0
        output = capsys.readouterr().out
        assert "ranked by avg_tf" in output


class TestSearch:
    def test_finds_frequent_term(self, corpus_path, capsys):
        # Pick a term we know exists by sampling the corpus stats.
        from repro.corpus import read_jsonl
        from repro.index import DatabaseServer

        server = DatabaseServer(read_jsonl(corpus_path))
        term = server.actual_language_model().top_terms(1, "ctf")[0].term
        assert main(["search", str(corpus_path), term, "-n", "2"]) == 0
        assert "doc_id" in capsys.readouterr().out

    def test_no_results_exit_code(self, corpus_path, capsys):
        assert main(["search", str(corpus_path), "zzzznothing"]) == 1


class TestEstimateSize:
    def test_reports_estimate(self, corpus_path, capsys):
        assert main(["estimate-size", str(corpus_path), "--sample-docs", "40"]) == 0
        output = capsys.readouterr().out
        assert "estimated size" in output
        assert "actual size" in output


class TestTrace:
    def test_sample_writes_trace(self, corpus_path, tmp_path, capsys):
        model = tmp_path / "m.lm"
        trace = tmp_path / "t.jsonl"
        code = main(["sample", str(corpus_path), "-o", str(model), "--max-docs", "30",
                     "--trace", str(trace), "--seed", "2"])
        assert code == 0
        assert "trace:" in capsys.readouterr().out
        from repro.obs import read_trace

        records = read_trace(str(trace))
        assert records[0]["type"] == "meta"
        query_spans = [
            r for r in records if r.get("type") == "span" and r.get("name") == "query"
        ]
        assert query_spans  # at least one span per executed query

    def test_sample_trace_with_faults_uses_simulated_clock(
        self, corpus_path, tmp_path, capsys
    ):
        model = tmp_path / "m.lm"
        trace = tmp_path / "t.jsonl"
        code = main(["sample", str(corpus_path), "-o", str(model), "--max-docs", "30",
                     "--fault-rate", "0.3", "--trace", str(trace), "--seed", "2"])
        assert code == 0
        from repro.obs import read_trace

        records = read_trace(str(trace))
        assert records[0]["clock"] == "SimulatedClock"

    def test_trace_report_renders(self, corpus_path, tmp_path, capsys):
        model = tmp_path / "m.lm"
        trace = tmp_path / "t.jsonl"
        assert main(["sample", str(corpus_path), "-o", str(model), "--max-docs", "30",
                     "--trace", str(trace), "--seed", "2"]) == 0
        capsys.readouterr()
        assert main(["trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Trace:" in out
        assert "Per-database activity" in out

    def test_trace_missing_file(self, tmp_path, capsys):
        code = main(["trace", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_trace_malformed_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n", encoding="utf-8")
        code = main(["trace", str(bad)])
        assert code == 2
        assert "invalid trace file" in capsys.readouterr().err
