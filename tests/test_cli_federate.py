"""Tests for the `repro federate` CLI subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.corpus import read_jsonl
from repro.index import DatabaseServer


@pytest.fixture(scope="module")
def corpora(tmp_path_factory):
    """Two small corpora with distinct names and doc ids."""
    directory = tmp_path_factory.mktemp("federate")
    paths = []
    for name, profile, seed in (("newsdb", "wsj88", 1), ("scidb", "cacm", 2)):
        raw = directory / f"raw-{name}.jsonl"
        main(["generate", "--profile", profile, "--scale", "0.03", "--seed",
              str(seed), "-o", str(raw)])
        renamed = directory / f"{name}.jsonl"
        with raw.open() as src, renamed.open("w") as dst:
            for index, line in enumerate(src):
                record = json.loads(line)
                record["doc_id"] = f"{name}-{index}"
                dst.write(json.dumps(record) + "\n")
        paths.append(renamed)
    return paths


class TestFederate:
    def test_known_term_routes_and_returns_results(self, corpora, capsys):
        # Use a frequent content term of the first corpus so the search
        # produces results.
        server = DatabaseServer(read_jsonl(corpora[0]))
        term = server.actual_language_model().top_terms(1, "ctf")[0].term
        code = main(
            ["federate", str(corpora[0]), str(corpora[1]), "--query", term,
             "-n", "5", "--sample-docs", "40"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "Database ranking" in output
        assert "Merged results" in output
        assert "newsdb" in output and "scidb" in output

    def test_requires_two_corpora(self, corpora, capsys):
        code = main(["federate", str(corpora[0]), "--query", "x"])
        assert code == 2
        assert "at least two" in capsys.readouterr().err

    def test_duplicate_names_rejected(self, corpora, capsys):
        code = main(["federate", str(corpora[0]), str(corpora[0]), "--query", "x"])
        assert code == 2
        assert "duplicate" in capsys.readouterr().err

    def test_unknown_query_no_results(self, corpora, capsys):
        code = main(
            ["federate", str(corpora[0]), str(corpora[1]),
             "--query", "zzzznothing", "--sample-docs", "30"]
        )
        assert code == 1
        assert "no results" in capsys.readouterr().out


class TestFederateTrace:
    def test_trace_covers_acquisition_and_search(self, corpora, tmp_path, capsys):
        server = DatabaseServer(read_jsonl(corpora[0]))
        term = server.actual_language_model().top_terms(1, "ctf")[0].term
        trace = tmp_path / "federate.jsonl"
        code = main(
            ["federate", str(corpora[0]), str(corpora[1]), "--query", term,
             "-n", "5", "--sample-docs", "40", "--trace", str(trace)]
        )
        assert code == 0
        assert "trace:" in capsys.readouterr().out
        from repro.obs import read_trace, summarize_trace

        records = read_trace(str(trace))
        names = {r.get("name") for r in records if r.get("type") == "span"}
        assert {"pool_run", "sample_run", "query", "federated_search"} <= names
        summaries = summarize_trace(records)
        assert {"newsdb", "scidb"} <= set(summaries)
        assert all(s.queries > 0 for s in summaries.values())
