"""End-to-end CLI tests for the fleet lifecycle: migrate, status, workers.

The crash leg runs in a real subprocess: ``--crash-after-jobs`` kills a
worker with ``os._exit`` while it holds a job lease (no cleanup, like
SIGKILL mid-job), and the rerun must wait out the lease, finish the
round exactly once, and leave every shard verifiable — the PR's
acceptance criterion, exercised through the operator entry points.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _write_corpus(directory: Path, name: str, profile: str, seed: int) -> Path:
    """A small named corpus file with collision-free doc ids."""
    raw = directory / f"raw-{name}.jsonl"
    assert main(["generate", "--profile", profile, "--scale", "0.03", "--seed",
                 str(seed), "-o", str(raw)]) == 0
    path = directory / f"{name}.jsonl"
    with raw.open() as src, path.open("w") as dst:
        for index, line in enumerate(src):
            record = json.loads(line)
            record["doc_id"] = f"{name}-{index}"
            dst.write(json.dumps(record) + "\n")
    return path


@pytest.fixture(scope="module")
def fleet_dir(tmp_path_factory) -> Path:
    """Three corpora and a flat store of their learned models."""
    directory = tmp_path_factory.mktemp("clifleet")
    for name, profile, seed in (
        ("newsdb", "wsj88", 1), ("scidb", "cacm", 2), ("webdb", "cacm", 3)
    ):
        _write_corpus(directory, name, profile, seed)
    corpora = [str(directory / f"{n}.jsonl") for n in ("newsdb", "scidb", "webdb")]
    main(["federate", *corpora, "--query", "market court", "--sample-docs", "40",
          "--save-models", str(directory / "flat")])
    assert (directory / "flat" / "manifest.json").is_file()
    return directory


def corpora_args(directory: Path) -> list[str]:
    return [str(directory / f"{n}.jsonl") for n in ("newsdb", "scidb", "webdb")]


def run_cli(argv: list[str]) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )


class TestMigrateAndStatus:
    def test_migrate_then_status(self, fleet_dir, tmp_path, capsys):
        sharded = str(tmp_path / "sharded")
        assert main(["fleet", "migrate", str(fleet_dir / "flat"), sharded,
                     "--num-shards", "4"]) == 0
        out = capsys.readouterr().out
        assert "migrated 3 models" in out
        assert main(["fleet", "status", sharded,
                     "--queue", str(tmp_path / "q")]) == 0
        out = capsys.readouterr().out
        assert "Sharded model store" in out
        assert "4 shards, 3 models" in out
        assert "pending=0" in out
        assert main(["store", sharded, "--verify"]) == 0
        assert "store ok" in capsys.readouterr().out

    def test_migrate_refuses_existing_target(self, fleet_dir, tmp_path, capsys):
        sharded = str(tmp_path / "sharded")
        assert main(["fleet", "migrate", str(fleet_dir / "flat"), sharded]) == 0
        capsys.readouterr()
        assert main(["fleet", "migrate", str(fleet_dir / "flat"), sharded]) == 1
        assert "migration failed" in capsys.readouterr().err

    def test_migrate_missing_source(self, tmp_path, capsys):
        assert main(["fleet", "migrate", str(tmp_path / "nope"),
                     str(tmp_path / "out")]) == 2
        assert "no model store" in capsys.readouterr().err

    def test_status_flat_store_hints_migration(self, fleet_dir, capsys):
        assert main(["fleet", "status", str(fleet_dir / "flat")]) == 0
        out = capsys.readouterr().out
        assert "flat model store" in out
        assert "repro fleet migrate" in out


class TestRunWorkers:
    def test_fresh_fleet_drains_without_refreshing(self, fleet_dir, tmp_path, capsys):
        sharded = str(tmp_path / "sharded")
        assert main(["fleet", "migrate", str(fleet_dir / "flat"), sharded,
                     "--num-shards", "4"]) == 0
        capsys.readouterr()
        assert main(["fleet", "run-workers", *corpora_args(fleet_dir),
                     "--models", sharded, "--queue", str(tmp_path / "q"),
                     "--workers", "2", "--refresh-docs", "40"]) == 0
        out = capsys.readouterr().out
        assert "drained: 3 jobs completed, 0 attempts failed" in out
        assert "0 models refreshed" in out
        # Every job reached done; the store is untouched (epoch 1).
        assert main(["fleet", "status", sharded, "--queue",
                     str(tmp_path / "q")]) == 0
        out = capsys.readouterr().out
        assert "done=3" in out and "epoch 1" in out

    def test_missing_store_model_rejected(self, fleet_dir, tmp_path, capsys):
        from repro.store import ModelStore

        flat = ModelStore(fleet_dir / "flat")
        partial = {name: model for name, model in flat.iter_models()
                   if name != "webdb"}
        ModelStore(tmp_path / "partial").save(partial)
        assert main(["fleet", "run-workers", *corpora_args(fleet_dir),
                     "--models", str(tmp_path / "partial"),
                     "--queue", str(tmp_path / "q")]) == 2
        assert "missing models" in capsys.readouterr().err

    def test_crash_mid_lease_then_resume_exactly_once(self, fleet_dir, tmp_path,
                                                      capsys):
        # Drift one database after its model was learned, so the round
        # has real refresh work to lose in the crash.
        _write_corpus(fleet_dir, "newsdb", "cacm", 77)
        try:
            sharded = str(tmp_path / "sharded")
            assert main(["fleet", "migrate", str(fleet_dir / "flat"), sharded,
                         "--num-shards", "4"]) == 0
            capsys.readouterr()
            queue = str(tmp_path / "q")
            crashed = run_cli(["fleet", "run-workers", *corpora_args(fleet_dir),
                               "--models", sharded, "--queue", queue,
                               "--workers", "1", "--lease-seconds", "2",
                               "--refresh-docs", "40",
                               "--crash-after-jobs", "1"])
            assert crashed.returncode == 3
            assert "simulated crash holding the lease" in crashed.stderr
            states = [json.loads(p.read_text())["state"]
                      for p in Path(queue, "jobs").glob("*.json")]
            assert sorted(states) == ["done", "leased", "pending"]

            # The rerun waits out the dead worker's lease and finishes
            # the round; nothing done is re-run.
            assert main(["fleet", "run-workers", *corpora_args(fleet_dir),
                         "--models", sharded, "--queue", queue,
                         "--workers", "1", "--lease-seconds", "2",
                         "--refresh-docs", "40"]) == 0
            out = capsys.readouterr().out
            assert "drained: 2 jobs completed" in out

            jobs = {json.loads(p.read_text())["database"]: json.loads(p.read_text())
                    for p in Path(queue, "jobs").glob("*.json")}
            assert all(job["state"] == "done" for job in jobs.values())
            # Only the drifted database was refreshed, whichever run did
            # it (install happens before completion, so a pre-crash
            # refresh survives).
            refreshed = {name for name, job in jobs.items()
                         if job["result"]["refreshed"]}
            assert refreshed == {"newsdb"}
            # Exactly one job (the one whose lease died) needed a second
            # attempt; the pre-crash completion was not repeated.
            attempts = sorted(job["attempts"] for job in jobs.values())
            assert attempts == [1, 1, 2]
            # The refreshed model landed in its shard and every shard
            # still verifies.
            assert main(["store", sharded, "--verify"]) == 0
            assert "store ok" in capsys.readouterr().out
        finally:
            _write_corpus(fleet_dir, "newsdb", "wsj88", 1)


class TestServingFromStore:
    def test_serve_bench_models_flag(self, fleet_dir, tmp_path, capsys):
        sharded = str(tmp_path / "sharded")
        assert main(["fleet", "migrate", str(fleet_dir / "flat"), sharded]) == 0
        capsys.readouterr()
        assert main(["serve-bench", *corpora_args(fleet_dir),
                     "--models", sharded, "--queries", "4", "--budget", "0.05",
                     "--backend-latency", "0"]) == 0
        assert "serve-bench: 3 databases" in capsys.readouterr().out

    def test_serve_bench_models_must_cover_federation(self, fleet_dir, tmp_path,
                                                      capsys):
        from repro.store import ModelStore

        flat = ModelStore(fleet_dir / "flat")
        partial = {name: model for name, model in flat.iter_models()
                   if name != "webdb"}
        ModelStore(tmp_path / "partial").save(partial)
        assert main(["serve-bench", *corpora_args(fleet_dir),
                     "--models", str(tmp_path / "partial"),
                     "--queries", "4", "--budget", "0.05"]) == 2
        assert "missing models" in capsys.readouterr().err

    def test_federate_warm_starts_from_sharded_store(self, fleet_dir, tmp_path,
                                                     capsys):
        sharded = str(tmp_path / "sharded")
        assert main(["fleet", "migrate", str(fleet_dir / "flat"), sharded]) == 0
        capsys.readouterr()
        main(["federate", *corpora_args(fleet_dir), "--query", "market court",
              "--models", sharded])
        assert "warm-started 3 models" in capsys.readouterr().out
