"""Unit tests for repro.starts (protocol, servers, acquisition)."""

from __future__ import annotations

import pytest

from repro.lm import LanguageModel
from repro.sampling import ListBootstrap, MaxDocuments
from repro.starts import (
    CooperationRefused,
    CooperativeSource,
    HonestServer,
    LegacyServer,
    MisrepresentingServer,
    SamplingSource,
    UncooperativeServer,
    acquire_language_model,
    export_starts,
    parse_starts,
)
from repro.starts.protocol import records_to_model


@pytest.fixture
def model() -> LanguageModel:
    built = LanguageModel(name="demo")
    built.add_document(["apple", "apple", "banana"])
    built.add_document(["cherry"])
    return built


class TestProtocolRoundTrip:
    def test_export_parse_round_trip(self, model):
        metadata, records = parse_starts(export_starts(model))
        rebuilt = records_to_model(metadata, records)
        assert set(rebuilt) == set(model)
        for term in model:
            assert rebuilt.df(term) == model.df(term)
            assert rebuilt.ctf(term) == model.ctf(term)
        assert rebuilt.documents_seen == model.documents_seen
        assert rebuilt.tokens_seen == model.tokens_seen

    def test_metadata_flags(self, model):
        metadata, _ = parse_starts(export_starts(model, stemming=False, stopwords=True))
        assert metadata.stemming is False
        assert metadata.stopwords is True
        assert metadata.source == "demo"

    def test_records_sorted(self, model):
        lines = export_starts(model).splitlines()[2:]
        terms = [line.split()[1] for line in lines]
        assert terms == sorted(terms)

    def test_empty_model(self):
        metadata, records = parse_starts(export_starts(LanguageModel(name="empty")))
        assert records == []
        assert metadata.documents == 0


class TestProtocolErrors:
    def test_missing_header(self):
        with pytest.raises(ValueError, match="@starts"):
            parse_starts("term apple df=1 ctf=1\n")

    def test_bad_version(self):
        with pytest.raises(ValueError, match="version"):
            parse_starts("@starts version=9 source=x\n@attr documents=1 tokens=1 stemming=true stopwords=true\n")

    def test_missing_attr_line(self):
        with pytest.raises(ValueError, match="@attr"):
            parse_starts("@starts version=1 source=x\nterm a df=1 ctf=1\n")

    def test_missing_attr_field(self):
        with pytest.raises(ValueError, match="documents"):
            parse_starts("@starts version=1 source=x\n@attr tokens=1 stemming=true stopwords=true\n")

    def test_malformed_record(self):
        text = (
            "@starts version=1 source=x\n"
            "@attr documents=1 tokens=1 stemming=true stopwords=true\n"
            "term apple df=1\n"
        )
        with pytest.raises(ValueError, match="malformed"):
            parse_starts(text)

    def test_bad_boolean(self):
        with pytest.raises(ValueError, match="true/false"):
            parse_starts("@starts version=1 source=x\n@attr documents=1 tokens=1 stemming=yes stopwords=true\n")


class TestServers:
    def test_honest_export_matches_index(self, tiny_server):
        honest = HonestServer(tiny_server)
        metadata, records = parse_starts(honest.starts_export())
        actual = tiny_server.actual_language_model()
        assert metadata.documents == actual.documents_seen
        assert len(records) == len(actual)

    def test_legacy_refuses(self, tiny_server):
        with pytest.raises(CooperationRefused, match="legacy"):
            LegacyServer(tiny_server).starts_export()

    def test_uncooperative_refuses(self, tiny_server):
        with pytest.raises(CooperationRefused, match="denied"):
            UncooperativeServer(tiny_server).starts_export()

    def test_all_wrappers_search_honestly(self, tiny_server):
        expected = [d.doc_id for d in tiny_server.run_query("apple", max_docs=3)]
        for wrapper_class in (HonestServer, LegacyServer, UncooperativeServer):
            wrapper = wrapper_class(tiny_server)
            got = [d.doc_id for d in wrapper.run_query("apple", max_docs=3)]
            assert got == expected

    def test_misrepresenting_inflates(self, tiny_server):
        liar = MisrepresentingServer(tiny_server, inflation=10.0)
        forged = liar.forged_model()
        actual = tiny_server.actual_language_model()
        assert forged.documents_seen == actual.documents_seen * 10
        some_term = next(iter(actual))
        assert forged.df(some_term) == actual.df(some_term) * 10

    def test_misrepresenting_injects(self, tiny_server):
        liar = MisrepresentingServer(tiny_server, injected_terms=("jackpot",))
        assert liar.forged_model().df("jackpot") > 0
        # But the search surface stays honest:
        assert liar.run_query("jackpot", max_docs=5) == []

    def test_invalid_inflation(self, tiny_server):
        with pytest.raises(ValueError):
            MisrepresentingServer(tiny_server, inflation=0.5)


class TestAcquisition:
    def _sampling(self) -> SamplingSource:
        return SamplingSource(
            bootstrap=ListBootstrap(["apple", "honey", "bees", "sugar"]),
            stopping=MaxDocuments(4),
        )

    def test_trusting_honest_uses_starts(self, tiny_server):
        result = acquire_language_model(
            HonestServer(tiny_server), self._sampling(), CooperativeSource()
        )
        assert result.method == "starts"
        assert result.queries_run == 0

    def test_legacy_falls_back_to_sampling(self, tiny_server):
        result = acquire_language_model(
            LegacyServer(tiny_server), self._sampling(), CooperativeSource()
        )
        assert result.method == "sampling"
        assert result.documents_examined > 0

    def test_untrusting_always_samples(self, tiny_server):
        result = acquire_language_model(
            HonestServer(tiny_server),
            self._sampling(),
            CooperativeSource(),
            trust_exports=False,
        )
        assert result.method == "sampling"

    def test_trusting_liar_imports_forgery(self, tiny_server):
        liar = MisrepresentingServer(tiny_server, injected_terms=("jackpot",))
        result = acquire_language_model(liar, self._sampling(), CooperativeSource())
        assert result.method == "starts"
        assert result.model.df("jackpot") > 0

    def test_sampling_defeats_forgery(self, tiny_server):
        liar = MisrepresentingServer(tiny_server, injected_terms=("jackpot",))
        result = acquire_language_model(
            liar, self._sampling(), CooperativeSource(), trust_exports=False
        )
        assert result.method == "sampling"
        assert result.model.df("jackpot") == 0

    def test_plain_server_without_protocol_samples(self, tiny_server):
        # A bare DatabaseServer has no starts_export attribute at all.
        result = acquire_language_model(tiny_server, self._sampling(), CooperativeSource())
        assert result.method == "sampling"
