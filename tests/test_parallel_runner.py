"""Equivalence and behaviour tests for the parallel trial runner.

The runner's contract: for any worker count, :func:`run_trials` returns
the same results in the same order as in-process serial execution —
every random decision derives from the spec's seed, and serial and
worker paths share one :func:`run_trial` implementation.  These tests
compare complete result objects (curves of floats included) with
``==``, i.e. bit-identity, not closeness.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import figure1_and_2_curves, figure3_strategy_curves
from repro.experiments.parallel import (
    TrialSpec,
    make_strategy,
    run_trial,
    run_trials,
)
from repro.experiments.testbed import Testbed as ExperimentTestbed
from repro.sampling.selection import (
    FrequencyFromLearned,
    RandomFromLearned,
    RandomFromOther,
)
from repro.utils.rand import derive_seed


@pytest.fixture(scope="module")
def testbed():
    return ExperimentTestbed(seed=1, scale=0.05)


@pytest.fixture(scope="module")
def specs():
    return [
        TrialSpec(profile="cacm", strategy="random_llm", seed=derive_seed(0, "fig1", "cacm")),
        TrialSpec(profile="cacm", strategy="df_llm", seed=11, max_documents=60),
        TrialSpec(
            profile="cacm",
            strategy="ctf_llm",
            seed=12,
            docs_per_query=2,
            max_documents=60,
            measure_rdiff=True,
        ),
    ]


class TestSerialParallelEquivalence:
    @pytest.fixture(scope="class")
    def serial(self, testbed, specs):
        return run_trials(specs, testbed, workers=1)

    def test_two_workers_bit_identical(self, testbed, specs, serial):
        assert run_trials(specs, testbed, workers=2) == serial

    def test_more_workers_than_specs(self, testbed, specs, serial):
        assert run_trials(specs, testbed, workers=8) == serial

    def test_order_matches_spec_order(self, specs, serial):
        assert [result.spec for result in serial] == specs

    def test_results_carry_requested_measurements(self, serial):
        assert serial[0].curve is not None and serial[0].rdiff == ()
        assert serial[2].curve is not None and len(serial[2].rdiff) > 0

    def test_trials_independent_of_batch_composition(self, testbed, specs, serial):
        # Running a spec alone gives the same result as inside a batch.
        assert run_trial(testbed, specs[1]) == serial[1]


class TestFigureEquivalence:
    def test_figure12_workers_bit_identical(self, testbed):
        serial = figure1_and_2_curves(testbed, seeds=(0,))
        parallel = figure1_and_2_curves(testbed, seeds=(0,), workers=4)
        assert parallel == serial

    def test_figure3_workers_bit_identical(self, testbed):
        serial = figure3_strategy_curves(testbed, seeds=(0,))
        parallel = figure3_strategy_curves(testbed, seeds=(0,), workers=3)
        assert parallel == serial


class TestTrialSpecResolution:
    def test_default_budget_resolves_in_trial(self, testbed):
        spec = TrialSpec(profile="cacm", strategy="random_llm", seed=0)
        result = run_trial(testbed, spec)
        assert result.documents_examined <= testbed.document_budget("cacm")

    def test_unknown_strategy_rejected(self, testbed):
        with pytest.raises(ValueError, match="unknown strategy"):
            make_strategy(testbed, "zipf_llm")

    def test_strategy_factory_types(self, testbed):
        assert isinstance(make_strategy(testbed, "random_llm"), RandomFromLearned)
        assert isinstance(make_strategy(testbed, "random_olm"), RandomFromOther)
        for label, metric in (("df_llm", "df"), ("ctf_llm", "ctf"), ("avg_tf_llm", "avg_tf")):
            strategy = make_strategy(testbed, label)
            assert isinstance(strategy, FrequencyFromLearned)
            assert strategy.metric == metric
