"""Unit tests for repro.serving (frontend, caches, fan-out, bench)."""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.corpus import Document
from repro.dbselect import KlSelector
from repro.federation import (
    FederatedSearchService,
    SearchRequest,
    build_skewed_partition,
)
from repro.index import DatabaseServer
from repro.obs import TraceRecorder
from repro.sampling import RandomFromOther, RefreshPolicy
from repro.sampling.transport import SimulatedClock, TransientServerError
from repro.serving import (
    FederationFrontend,
    LatencyInjected,
    LruCache,
    build_synthetic_federation,
    format_serve_bench,
    queries_from_models,
    run_serve_bench,
)
from repro.synth import wsj88_like


@pytest.fixture(scope="module")
def servers() -> dict[str, DatabaseServer]:
    corpus = wsj88_like().build(seed=23, scale=0.06)
    parts = build_skewed_partition(corpus, num_databases=3, seed=5)
    return {part.name: DatabaseServer(part) for part in parts}


@pytest.fixture(scope="module")
def models(servers):
    return {name: server.actual_language_model() for name, server in servers.items()}


@pytest.fixture
def service(servers, models) -> FederatedSearchService:
    service = FederatedSearchService(servers, databases_per_query=2)
    service.use_models(models)
    return service


@pytest.fixture(scope="module")
def queries(models) -> list[str]:
    return queries_from_models(models, 6)


class TestSearchRequest:
    def test_defaults(self):
        request = SearchRequest(query="market")
        assert request.n == 10
        assert request.docs_per_database == 10
        assert request.deadline is None
        assert request.databases_per_query is None

    def test_frozen(self):
        request = SearchRequest(query="market")
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.n = 5  # type: ignore[misc]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 0},
            {"n": -1},
            {"docs_per_database": 0},
            {"docs_per_database": -3},
            {"deadline": 0.0},
            {"deadline": -1.0},
            {"databases_per_query": 0},
        ],
    )
    def test_non_positive_rejected(self, kwargs):
        with pytest.raises(ValueError, match="must be positive"):
            SearchRequest(query="market", **kwargs)


class TestLruCache:
    def test_basic_hit_miss_counters(self):
        cache: LruCache[str, int] = LruCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_evicts_least_recently_used(self):
        cache: LruCache[str, int] = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" becomes the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_put_refreshes_existing_key(self):
        cache: LruCache[str, int] = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert: no eviction
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_clear_keeps_history(self):
        cache: LruCache[str, int] = LruCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_cached_falsy_values_are_hits(self):
        cache: LruCache[str, int] = LruCache(4)
        cache.put("zero", 0)
        assert cache.get("zero") == 0
        assert cache.hits == 1

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            LruCache(0)

    def test_counts_flow_to_recorder(self):
        recorder = TraceRecorder(clock=SimulatedClock())
        cache: LruCache[str, int] = LruCache(4, name="test", recorder=recorder)
        cache.get("a")
        cache.put("a", 1)
        cache.get("a")
        assert recorder.metrics.counter("test.miss").value == 1
        assert recorder.metrics.counter("test.hit").value == 1

    def test_concurrent_hammer(self):
        """8 threads × 400 mixed operations against a 32-entry cache.

        The cache sits behind the frontend's thread-pool fan-out, so
        every operation (including the OrderedDict recency moves, which
        are not atomic) must hold up under contention: no lost entries,
        no corrupted counters, no exceptions.
        """
        from concurrent.futures import ThreadPoolExecutor

        cache: LruCache[int, int] = LruCache(32)
        threads, rounds = 8, 400

        def worker(thread_id: int) -> None:
            for i in range(rounds):
                key = (thread_id * 131 + i) % 100
                cache.put(key, key)
                value = cache.get(key)
                assert value is None or value == key
                if i % 7 == 0:
                    len(cache)
                    key in cache
                if i % 97 == 0:
                    cache.clear()

        with ThreadPoolExecutor(max_workers=threads) as pool:
            for future in [pool.submit(worker, t) for t in range(threads)]:
                future.result()  # re-raises any worker assertion/corruption

        assert len(cache) <= 32
        assert cache.hits + cache.misses == threads * rounds


class TestFrontendSelection:
    def test_matches_scalar_service_select(self, service, queries):
        with FederationFrontend(service) as frontend:
            for query in queries:
                scalar = service.select(query)
                fast = frontend.select(query)
                assert scalar.names == fast.names
                for left, right in zip(scalar.entries, fast.entries):
                    assert left.score == pytest.approx(right.score, abs=1e-9)

    def test_repeat_queries_hit_the_cache(self, service, queries):
        with FederationFrontend(service) as frontend:
            first = frontend.select(queries[0])
            hits_before = frontend.selections.hits
            second = frontend.select(queries[0])
            assert frontend.selections.hits == hits_before + 1
            assert second == first

    def test_same_terms_different_spelling_share_entry(self, service):
        with FederationFrontend(service) as frontend:
            original = frontend.select("market  report")
            assert len(frontend.selections) == 1
            respelled = frontend.select("market report")
            # One cached ranking serves both spellings; the response
            # still carries the caller's query text.
            assert len(frontend.selections) == 1
            assert respelled.query == "market report"
            assert respelled.entries == original.entries

    def test_non_cori_selector_falls_back_to_service(self, servers, models, queries):
        service = FederatedSearchService(
            servers, selector=KlSelector(), databases_per_query=2
        )
        service.use_models(models)
        with FederationFrontend(service) as frontend:
            assert frontend.select(queries[0]) == service.select(queries[0])
            hits_before = frontend.selections.hits
            frontend.select(queries[0])
            assert frontend.selections.hits == hits_before + 1

    def test_select_without_models_raises(self, servers):
        service = FederatedSearchService(servers)
        with FederationFrontend(service) as frontend:
            with pytest.raises(RuntimeError, match="learn_models"):
                frontend.select("anything")

    def test_max_workers_validated(self, service):
        with pytest.raises(ValueError):
            FederationFrontend(service, max_workers=0)


class TestEpochInvalidation:
    def test_use_models_moves_the_epoch(self, servers, models):
        service = FederatedSearchService(servers)
        assert service.model_epoch == 0
        service.use_models(models)
        assert service.model_epoch == 1
        service.use_models(models)
        assert service.model_epoch == 2

    def test_learn_models_moves_the_epoch(self, servers):
        service = FederatedSearchService(servers)
        service.learn_models(
            lambda name: RandomFromOther(servers[name].actual_language_model()),
            total_documents=90,
            seed=3,
        )
        assert service.model_epoch == 1

    def test_new_models_invalidate_frontend_caches(self, servers, models, queries):
        service = FederatedSearchService(servers, databases_per_query=2)
        service.use_models(models)
        with FederationFrontend(service) as frontend:
            frontend.select(queries[0])
            assert frontend.compiled_epoch == 1
            assert len(frontend.selections) == 1
            service.use_models(models)
            ranking = frontend.select(queries[0])
            assert frontend.compiled_epoch == 2
            # The old epoch's entry is gone; only the recomputed one remains.
            assert len(frontend.selections) == 1
            assert ranking.names == service.select(queries[0]).names

    def test_manual_invalidate_forces_recompile(self, service, queries):
        with FederationFrontend(service) as frontend:
            frontend.select(queries[0])
            frontend.invalidate()
            assert frontend.compiled_epoch == -1
            assert len(frontend.selections) == 0
            frontend.select(queries[0])
            assert frontend.compiled_epoch == service.model_epoch

    def test_forced_staleness_refresh_moves_the_epoch(self, servers, models):
        service = FederatedSearchService(servers)
        service.use_models(models)
        bootstrap = lambda name: RandomFromOther(models[name])  # noqa: E731
        # Impossible spearman floor: every probe looks stale, every
        # model is re-sampled, so a new set must be installed.
        reports = service.refresh_stale_models(
            bootstrap,
            policy=RefreshPolicy(spearman_floor=1.1, refresh_documents=30),
            seed=11,
        )
        assert set(reports) == set(servers)
        assert service.model_epoch == 2

    def test_fresh_models_keep_the_epoch(self, servers, models):
        service = FederatedSearchService(servers)
        service.use_models(models)
        bootstrap = lambda name: RandomFromOther(models[name])  # noqa: E731
        # Thresholds that can never trip: nothing refreshed, epoch parked.
        reports = service.refresh_stale_models(
            bootstrap,
            policy=RefreshPolicy(rdiff_threshold=2.0, spearman_floor=-2.0),
            seed=11,
        )
        assert set(reports) == set(servers)
        assert service.model_epoch == 1


class _FailingEngine:
    def search(self, query: str, n: int = 10):
        raise TransientServerError("injected backend failure")


class FailingServer:
    """A retrievable database whose engine always fails."""

    def __init__(self, inner: DatabaseServer) -> None:
        self.inner = inner
        self.name = inner.name
        self.engine = _FailingEngine()

    def run_query(self, query: str, max_docs: int = 10) -> list[Document]:
        return self.inner.run_query(query, max_docs=max_docs)


class TestConcurrentFanout:
    def test_matches_serial_service_search(self, service, queries):
        request = SearchRequest(query=queries[0], n=5)
        serial = service.search(request)
        with FederationFrontend(service) as frontend:
            concurrent = frontend.search(request)
        assert concurrent.searched == serial.searched
        assert concurrent.results == serial.results
        assert concurrent.dropped == ()
        assert set(concurrent.timings) == set(concurrent.searched)

    def test_slow_backend_dropped_not_fatal(self, servers, models, queries):
        slowed = dict(servers)
        slow_name = sorted(servers)[0]
        slowed[slow_name] = LatencyInjected(servers[slow_name], delay=0.75)
        service = FederatedSearchService(slowed, databases_per_query=len(slowed))
        service.use_models(models)
        with FederationFrontend(service) as frontend:
            started = time.perf_counter()
            response = frontend.search(SearchRequest(query=queries[0], deadline=0.2))
            elapsed = time.perf_counter() - started
        assert slow_name in response.dropped
        assert slow_name not in response.searched
        assert len(response.searched) == len(servers) - 1
        assert response.results  # degraded answer, not an empty one
        assert elapsed < 0.7  # did not wait out the slow backend

    def test_failing_backend_dropped_not_fatal(self, servers, models, queries):
        broken = dict(servers)
        broken_name = sorted(servers)[-1]
        broken[broken_name] = FailingServer(servers[broken_name])
        service = FederatedSearchService(broken, databases_per_query=len(broken))
        service.use_models(models)
        with FederationFrontend(service) as frontend:
            response = frontend.search(SearchRequest(query=queries[0]))
        assert response.dropped == (broken_name,)
        assert broken_name not in response.searched
        assert broken_name in response.timings  # it completed (with an error)
        assert response.results

    def test_degradations_are_observable(self, servers, models, queries):
        slowed = dict(servers)
        slow_name = sorted(servers)[0]
        slowed[slow_name] = LatencyInjected(servers[slow_name], delay=0.75)
        recorder = TraceRecorder()
        service = FederatedSearchService(
            slowed, databases_per_query=len(slowed), recorder=recorder
        )
        service.use_models(models)
        with FederationFrontend(service) as frontend:
            frontend.search(SearchRequest(query=queries[0], deadline=0.2))
        drops = [e for e in recorder.events if e["name"] == "backend_dropped"]
        assert len(drops) == 1
        assert drops[0]["attributes"]["database"] == slow_name
        assert drops[0]["attributes"]["reason"] == "deadline"
        assert recorder.metrics.counter("serving.degraded_queries").value == 1
        spans = [s for s in recorder.spans if s.name == "frontend_search"]
        assert len(spans) == 1
        assert spans[0].attributes["dropped"] == [slow_name]

    def test_missing_engine_stays_a_hard_error(self, servers, models, queries):
        class QueryOnly:
            def __init__(self, inner):
                self._inner = inner

            def run_query(self, query, max_docs=10):
                return self._inner.run_query(query, max_docs=max_docs)

        partial = dict(servers)
        name = sorted(servers)[0]
        partial[name] = QueryOnly(servers[name])
        service = FederatedSearchService(partial, databases_per_query=len(partial))
        service.use_models(models)
        with FederationFrontend(service) as frontend:
            with pytest.raises(TypeError, match="RetrievableDatabase"):
                frontend.search(SearchRequest(query=queries[0]))

    def test_databases_per_query_override(self, service, queries):
        with FederationFrontend(service) as frontend:
            response = frontend.search(
                SearchRequest(query=queries[0], databases_per_query=1)
            )
        assert len(response.searched) == 1

    def test_search_many_aligns_and_warms_cache(self, service, queries):
        requests = [
            SearchRequest(query=queries[0], n=5),
            SearchRequest(query=queries[1], n=5),
            SearchRequest(query=queries[0], n=5),
        ]
        with FederationFrontend(service) as frontend:
            responses = frontend.search_many(requests)
            assert [r.query for r in responses] == [r.query for r in requests]
            assert responses[0].results == responses[2].results
            assert frontend.selections.hits >= 1

    def test_search_many_survives_mid_batch_deadline_expiry(
        self, servers, models, queries
    ):
        slowed = dict(servers)
        slow_name = sorted(servers)[0]
        slowed[slow_name] = LatencyInjected(servers[slow_name], delay=0.4)
        service = FederatedSearchService(slowed, databases_per_query=len(slowed))
        service.use_models(models)
        requests = [
            SearchRequest(query=queries[0]),
            SearchRequest(query=queries[1], deadline=0.1),  # expires mid-batch
            SearchRequest(query=queries[2]),
        ]
        with FederationFrontend(service) as frontend:
            responses = frontend.search_many(requests)
        # Order and alignment survive the expiry, and only the
        # deadline-carrying request drops the slow backend.
        assert [r.query for r in responses] == [r.query for r in requests]
        assert slow_name in responses[1].dropped
        assert slow_name not in responses[1].searched
        assert responses[1].results  # fast backends still answered
        for response in (responses[0], responses[2]):
            assert response.dropped == ()
            assert slow_name in response.searched

    def test_close_is_idempotent(self, service, queries):
        frontend = FederationFrontend(service)
        frontend.search(SearchRequest(query=queries[0]))
        frontend.close()
        frontend.close()


class TestFromStore:
    def test_warm_start_matches_in_memory_service(
        self, servers, models, service, queries, tmp_path
    ):
        service.save_models(tmp_path / "store")

        cold = FederatedSearchService(servers, databases_per_query=2)
        with FederationFrontend.from_store(cold, tmp_path / "store") as warm:
            # The scorer is compiled eagerly at the warm-started epoch.
            assert warm.compiled_epoch == cold.model_epoch > 0
            with FederationFrontend(service) as reference:
                for query in queries:
                    request = SearchRequest(query=query, n=5)
                    warm_response = warm.search(request)
                    reference_response = reference.search(request)
                    assert (
                        warm_response.ranking.entries
                        == reference_response.ranking.entries
                    )
                    assert warm_response.results == reference_response.results

    def test_warm_start_requires_complete_store(self, servers, models, tmp_path):
        some_name = next(iter(servers))
        partial = {some_name: models[some_name]}
        from repro.store import ModelStore

        ModelStore(tmp_path / "store").save(partial)
        cold = FederatedSearchService(servers, databases_per_query=2)
        with pytest.raises(ValueError, match="missing models"):
            FederationFrontend.from_store(cold, tmp_path / "store")

    def test_warm_start_from_sharded_store(self, servers, models, service, tmp_path):
        from repro.store import ShardedModelStore

        ShardedModelStore(tmp_path / "sharded", num_shards=4).save(models)
        cold = FederatedSearchService(servers, databases_per_query=2)
        with FederationFrontend.from_store(cold, tmp_path / "sharded") as warm:
            assert warm.compiled_epoch == cold.model_epoch > 0
            with FederationFrontend(service) as reference:
                request = SearchRequest(query="market bank stock", n=5)
                assert (
                    warm.search(request).ranking.entries
                    == reference.search(request).ranking.entries
                )

    def test_refresh_reloads_only_the_moved_shard(self, servers, models, tmp_path):
        from repro.lm import dumps_language_model
        from repro.store import ShardedModelStore

        store = ShardedModelStore(tmp_path / "sharded", num_shards=4)
        store.save(models)
        cold = FederatedSearchService(servers, databases_per_query=2)
        with FederationFrontend.from_store(cold, store) as frontend:
            # Swap one database's model for another's, touching only
            # its shard; the frontend must reload exactly the names
            # that live in that shard.
            target, donor = sorted(servers)[:2]
            store.update({target: models[donor]})
            shard_id = store.shard_for(target).root.name
            expected = sorted(
                name
                for name in servers
                if store.shard_for(name).root.name == shard_id
            )
            assert list(frontend.refresh_from_store()) == expected
            assert dumps_language_model(cold.models[target]) == (
                dumps_language_model(models[donor])
            )
            # The store hasn't moved since: a second poll is a no-op.
            assert frontend.refresh_from_store() == ()

    def test_refresh_flat_store_reloads_everything(self, servers, models, tmp_path):
        from repro.store import ModelStore

        store = ModelStore(tmp_path / "store")
        store.save(models)
        cold = FederatedSearchService(servers, databases_per_query=2)
        with FederationFrontend.from_store(cold, store) as frontend:
            # A flat store has a single epoch, so any write invalidates
            # the whole model set.
            swapped = dict(models, **{sorted(models)[0]: models[sorted(models)[1]]})
            store.save(swapped, model_epoch=store.model_epoch() + 1)
            assert list(frontend.refresh_from_store()) == sorted(servers)

    def test_refresh_without_warm_store_raises(self, service):
        with FederationFrontend(service) as frontend:
            with pytest.raises(RuntimeError, match="no store to refresh from"):
                frontend.refresh_from_store()


class TestServeBench:
    def test_report_shape_and_speedups(self, servers):
        report = run_serve_bench(servers, budget=0.03, num_queries=4)
        assert report.num_databases == len(servers)
        assert set(report.modes) == {
            "select_scalar",
            "select_vectorized",
            "select_cold_cache",
            "select_warm_cache",
            "search_serial",
            "search_concurrent",
        }
        assert all(seconds > 0 and ops > 0 for seconds, ops in report.modes.values())
        assert set(report.speedups) == {
            "vectorized_vs_scalar_select",
            "warm_vs_cold_cache_select",
            "concurrent_vs_serial_fanout",
        }
        assert all(value > 0 for value in report.speedups.values())
        rendered = format_serve_bench(report)
        assert "serve-bench" in rendered
        assert "Derived speedups" in rendered

    def test_report_carries_latency_percentiles(self, servers):
        report = run_serve_bench(servers, budget=0.03, num_queries=4)
        assert set(report.latency) == set(report.modes)
        for mode, (_, ops) in report.modes.items():
            summary = report.latency[mode]
            assert summary["count"] == ops
            assert 0 < summary["p50"] <= summary["p95"] <= summary["p99"]
            assert summary["min"] <= summary["p50"] and summary["p99"] <= summary["max"]
        rendered = format_serve_bench(report)
        for column in ("p50_ms", "p95_ms", "p99_ms"):
            assert column in rendered

    def test_synthetic_federation_builds(self):
        servers = build_synthetic_federation(num_databases=2, scale=0.03, seed=1)
        assert len(servers) == 2

    def test_latency_injection_validated(self, servers):
        name = sorted(servers)[0]
        with pytest.raises(ValueError):
            LatencyInjected(servers[name], delay=-0.1)

    def test_queries_from_models_validated(self, models):
        with pytest.raises(ValueError):
            queries_from_models(models, 0)

    def test_non_evaluable_servers_rejected(self, servers):
        class QueryOnly:
            def __init__(self, inner):
                self._inner = inner

            def run_query(self, query, max_docs=10):
                return self._inner.run_query(query, max_docs=max_docs)

        wrapped = {name: QueryOnly(server) for name, server in servers.items()}
        with pytest.raises(TypeError, match="evaluable"):
            run_serve_bench(wrapped, budget=0.01)

    def test_explicit_models_replace_evaluability(self, servers, models):
        # Store-loaded models make the bench runnable even when the
        # backends can't surrender their actual language models.
        wrapped = {
            name: LatencyInjected(server, delay=0.0)
            for name, server in servers.items()
        }
        report = run_serve_bench(wrapped, budget=0.02, num_queries=4, models=models)
        assert report.num_databases == len(servers)

    def test_explicit_models_must_cover_every_database(self, servers, models):
        partial = {name: models[name] for name in sorted(models)[:-1]}
        with pytest.raises(TypeError, match="missing databases"):
            run_serve_bench(servers, budget=0.01, models=partial)


class TestServeBenchCli:
    def test_synthetic_smoke_run(self, capsys):
        from repro.cli import main

        code = main(
            ["serve-bench", "--synthetic", "2", "--scale", "0.03",
             "--queries", "4", "--budget", "0.05", "--backend-latency", "0"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "serve-bench: 2 databases" in output
        assert "warm_vs_cold_cache_select" in output

    @pytest.mark.parametrize(
        "argv, message",
        [
            (["serve-bench", "--budget", "0"], "--budget"),
            (["serve-bench", "--backend-latency", "-1"], "--backend-latency"),
            (["serve-bench", "--synthetic", "1"], "--synthetic"),
            (["serve-bench", "one.jsonl"], "at least two"),
        ],
    )
    def test_bad_arguments_rejected(self, argv, message, capsys):
        from repro.cli import main

        assert main(argv) == 2
        assert message in capsys.readouterr().err

    def test_non_evaluable_federation_reports_friendly_error(self, monkeypatch, capsys):
        """A misconfigured federation is a one-line message, not a traceback."""
        import repro.serving.bench as bench
        from repro.cli import main

        def raise_type_error(*args, **kwargs):
            raise TypeError("serve-bench needs evaluable databases (actual models)")

        monkeypatch.setattr(bench, "run_serve_bench", raise_type_error)
        code = main(
            ["serve-bench", "--synthetic", "2", "--scale", "0.03", "--budget", "0.05"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "serve-bench cannot run on this federation" in err
        assert "evaluable databases" in err
        assert "Traceback" not in err
