"""Unit tests for repro.synth.topics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.synth.topics import MixtureWeights, TopicModel, TopicSpace
from repro.synth.vocabulary import SyntheticVocabulary, VocabularyConfig
from repro.utils.rand import ensure_rng


@pytest.fixture(scope="module")
def vocab() -> SyntheticVocabulary:
    return SyntheticVocabulary(VocabularyConfig(content_size=1500), seed=0)


@pytest.fixture(scope="module")
def space(vocab) -> TopicSpace:
    return TopicSpace(vocab, num_topics=4, topic_vocab_size=200, seed=5)


class TestMixtureWeights:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MixtureWeights(stopwords=-0.1)

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            MixtureWeights(stopwords=0, shared=0, topic=0, noise=0)


class TestTopicModel:
    def test_sample_shape_and_range(self, space):
        rng = ensure_rng(0)
        ids = space[0].sample(500, rng)
        assert ids.shape == (500,)
        assert ids.min() >= 0
        assert ids.max() < len(space.words)

    def test_sample_zero(self, space):
        assert space[0].sample(0, ensure_rng(0)).size == 0

    def test_sample_negative_rejected(self, space):
        with pytest.raises(ValueError):
            space[0].sample(-1, ensure_rng(0))

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            TopicModel("t", np.arange(3), np.ones(4))

    def test_zero_mass_rejected(self):
        with pytest.raises(ValueError):
            TopicModel("t", np.arange(3), np.zeros(3))

    def test_probability_of_sums_slots(self, space):
        topic = space[0]
        # Probabilities over all distinct ids must sum to ~1.
        total = sum(topic.probability_of(int(i)) for i in np.unique(topic.word_ids))
        assert total == pytest.approx(1.0, abs=1e-9)


class TestTopicSpace:
    def test_topic_count(self, space):
        assert len(space) == 4

    def test_stopwords_dominate_samples(self, space, vocab):
        rng = ensure_rng(1)
        ids = space[0].sample(20_000, rng)
        stop_count = int((ids < len(vocab.stopwords)).sum())
        fraction = stop_count / ids.size
        # MixtureWeights defaults put ~44% of mass on stopwords.
        assert 0.35 < fraction < 0.55

    def test_topics_have_distinct_specialties(self, space):
        rng = ensure_rng(2)
        sample_a = set(space[0].sample(5000, rng).tolist())
        sample_b = set(space[1].sample(5000, rng).tolist())
        # Shared core overlaps, but each topic must also have words the
        # other effectively never produces.
        assert sample_a - sample_b and sample_b - sample_a

    def test_decode_round_trip(self, space):
        rng = ensure_rng(3)
        ids = space[0].sample(10, rng)
        words = space.decode(ids)
        assert len(words) == 10
        assert all(isinstance(word, str) and word for word in words)

    def test_invalid_topic_vocab_size(self, vocab):
        with pytest.raises(ValueError):
            TopicSpace(vocab, num_topics=2, topic_vocab_size=10**6)

    def test_invalid_num_topics(self, vocab):
        with pytest.raises(ValueError):
            TopicSpace(vocab, num_topics=0)

    def test_pinned_front_words_frequent(self, vocab):
        space = TopicSpace(
            vocab, num_topics=2, topic_vocab_size=100, pinned_front=5, seed=1
        )
        rng = ensure_rng(4)
        ids = space[0].sample(50_000, rng)
        stop_count = len(vocab.stopwords)
        # The 5 pinned content words occupy ids stop_count..stop_count+4
        # and must each actually occur in a large sample.
        pinned_hits = [(ids == stop_count + i).sum() for i in range(5)]
        assert all(hits > 0 for hits in pinned_hits)
        # And they should be much more frequent than a mid-tail content word.
        tail_hits = (ids == stop_count + 1200).sum()
        assert min(pinned_hits) > tail_hits

    def test_always_boost_in_every_topic(self, vocab):
        space = TopicSpace(
            vocab,
            num_topics=3,
            topic_vocab_size=50,
            pinned_front=4,
            always_boost=4,
            seed=2,
        )
        stop_count = len(vocab.stopwords)
        for topic in space.topics:
            ids = set(topic.word_ids.tolist())
            for i in range(4):
                assert stop_count + i in ids

    def test_always_boost_exceeding_size_rejected(self, vocab):
        with pytest.raises(ValueError):
            TopicSpace(vocab, num_topics=1, topic_vocab_size=10, always_boost=11)
