"""Structural tests for repro.experiments.figures and .tables.

These run the actual figure/table computations at a tiny scale with a
single seed — fast enough for the suite, slow enough to be real — and
check the *structure* of the outputs (the full-scale shape assertions
live in benchmarks/).
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import (
    FIGURE1_PROFILES,
    figure1_and_2_curves,
    figure3_strategy_curves,
    figure4_rdiff_series,
)
from repro.experiments.tables import (
    table1_corpora,
    table3_query_counts,
    table4_summary,
)
from repro.experiments.testbed import Testbed as ExperimentTestbed


@pytest.fixture(scope="module")
def testbed() -> ExperimentTestbed:
    return ExperimentTestbed(seed=1, scale=0.05)


class TestFigure12:
    @pytest.fixture(scope="class")
    def curves(self, testbed):
        return figure1_and_2_curves(testbed, seeds=(0,))

    def test_one_curve_per_profile(self, curves):
        assert set(curves) == set(FIGURE1_PROFILES)

    def test_points_at_snapshot_grid(self, curves):
        for curve in curves.values():
            documents = [point.documents for point in curve.points]
            assert documents == sorted(documents)
            # All interior points sit on the 50-document grid; the final
            # point may be a capped budget endpoint.
            assert all(d % 50 == 0 for d in documents[:-1])

    def test_metrics_in_range(self, curves):
        for curve in curves.values():
            for point in curve.points:
                assert 0.0 <= point.percentage_learned <= 1.0
                assert 0.0 <= point.ctf_ratio <= 1.0
                assert -1.0 <= point.spearman <= 1.0
                assert point.queries > 0

    def test_budget_respected(self, curves, testbed):
        for name, curve in curves.items():
            budget = testbed.document_budget(name)
            assert curve.points[-1].documents <= budget


class TestFigure3AndTable3:
    @pytest.fixture(scope="class")
    def results(self, testbed):
        return figure3_strategy_curves(testbed, seeds=(0,))

    def test_all_strategies_present(self, results):
        assert set(results) == {
            "random_olm",
            "random_llm",
            "avg_tf_llm",
            "df_llm",
            "ctf_llm",
        }

    def test_query_counts_positive(self, results):
        for _, queries in results.values():
            assert queries > 0

    def test_table3_consistent_with_figure3(self, testbed, results):
        counts = table3_query_counts(testbed, seeds=(0,))
        assert set(counts) == set(results)


class TestFigure4:
    def test_series_structure(self, testbed):
        series = figure4_rdiff_series(testbed, seeds=(0,))
        assert set(series) == set(FIGURE1_PROFILES)
        for values in series.values():
            for (documents, value) in values[:-1]:
                assert documents % 50 == 0
            for _, value in values:
                assert 0.0 <= value <= 1.0


class TestTables:
    def test_table1_rows(self, testbed):
        rows = table1_corpora(testbed)
        assert [row["name"] for row in rows] == list(FIGURE1_PROFILES)
        for row in rows:
            assert row["documents"] > 0
            assert row["indexed_unique_terms"] <= row["unique_terms"]
            assert row["indexed_total_terms"] < row["total_terms"]

    def test_table4_summaries(self, testbed):
        summaries = table4_summary(testbed, k=10, docs_per_query=10, max_documents=60)
        assert set(summaries) == {"df", "ctf", "avg_tf"}
        for rank_by, summary in summaries.items():
            assert summary.rank_by == rank_by
            assert len(summary.terms) <= 10
