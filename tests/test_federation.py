"""Unit tests for repro.federation (testbed helpers and the service)."""

from __future__ import annotations

import warnings

import pytest

from repro.corpus import Corpus, Document
from repro.dbselect.merge import RoundRobinMerger
from repro.federation import (
    FederatedSearchService,
    SearchRequest,
    build_skewed_partition,
    relevance_counts,
    topical_queries,
)
from repro.index import DatabaseServer
from repro.sampling import RandomFromOther
from repro.synth import wsj88_like


@pytest.fixture(scope="module")
def corpus() -> Corpus:
    return wsj88_like().build(seed=51, scale=0.08)


@pytest.fixture(scope="module")
def parts(corpus):
    return build_skewed_partition(corpus, num_databases=4, seed=2)


class TestSkewedPartition:
    def test_covers_all_documents(self, corpus, parts):
        assert sum(len(part) for part in parts) == len(corpus)

    def test_no_duplicates(self, parts):
        all_ids = [doc_id for part in parts for doc_id in part.doc_ids]
        assert len(all_ids) == len(set(all_ids))

    def test_skew_present(self, corpus, parts):
        # For each topic, its home database holds clearly more than a
        # uniform share of its documents.
        for topic in sorted(corpus.topics())[:4]:
            counts = relevance_counts(parts, topic)
            total = sum(counts.values())
            if total < 20:
                continue
            assert max(counts.values()) / total > 1.5 / len(parts)

    def test_impure(self, parts):
        # Skewed, not pure: most databases hold several topics.
        multi_topic = sum(1 for part in parts if len(part.topics()) > 1)
        assert multi_topic >= len(parts) - 1

    def test_deterministic(self, corpus):
        first = build_skewed_partition(corpus, num_databases=4, seed=9)
        second = build_skewed_partition(corpus, num_databases=4, seed=9)
        assert [p.doc_ids for p in first] == [p.doc_ids for p in second]

    def test_validation(self, corpus):
        with pytest.raises(ValueError):
            build_skewed_partition(corpus, num_databases=0)
        with pytest.raises(ValueError):
            build_skewed_partition(corpus, num_databases=2, spillover=1.5)

    def test_unlabeled_corpus_rejected(self):
        plain = Corpus([Document(doc_id="a", text="x")])
        with pytest.raises(ValueError, match="topic"):
            build_skewed_partition(plain, num_databases=2)


class TestTopicalQueries:
    def test_one_query_per_topic(self, corpus, parts):
        queries = topical_queries(parts, max_topics=5)
        assert len(queries) == 5
        assert len({q.topic for q in queries}) == 5

    def test_queries_have_terms(self, parts):
        for query in topical_queries(parts, max_topics=3, terms_per_query=3):
            assert len(query.text.split()) == 3

    def test_query_terms_are_distinctive(self, corpus, parts):
        # A topic's own documents must contain its query terms much more
        # often than a uniform share.
        from collections import Counter

        from repro.text import Analyzer

        analyzer = Analyzer.inquery_style()
        queries = topical_queries(parts, max_topics=2)
        for query in queries:
            term = query.text.split()[0]
            in_topic = 0
            elsewhere = 0
            for part in parts:
                for document in part:
                    count = Counter(analyzer.analyze(document.text))[term]
                    if document.topic == query.topic:
                        in_topic += count
                    else:
                        elsewhere += count
            assert in_topic > elsewhere


class TestFederatedService:
    @pytest.fixture(scope="class")
    def service(self, parts):
        servers = {part.name: DatabaseServer(part) for part in parts}
        service = FederatedSearchService(servers, databases_per_query=2)
        service.learn_models(
            lambda name: RandomFromOther(servers[name].actual_language_model()),
            total_documents=240,
            seed=3,
        )
        return service

    def test_models_learned_for_all(self, service, parts):
        assert set(service.models) == {part.name for part in parts}

    def test_select_before_learning_raises(self, parts):
        servers = {part.name: DatabaseServer(part) for part in parts}
        empty_service = FederatedSearchService(servers)
        with pytest.raises(RuntimeError, match="learn_models"):
            empty_service.select("anything")

    def test_search_end_to_end(self, service, parts):
        queries = topical_queries(parts, max_topics=2)
        response = service.search(SearchRequest(query=queries[0].text, n=5))
        assert response.query == queries[0].text
        assert len(response.searched) == 2
        assert 0 < len(response.results) <= 5
        assert all(item.database in response.searched for item in response.results)

    def test_response_reports_timings_and_no_drops(self, service, parts):
        queries = topical_queries(parts, max_topics=1)
        response = service.search(SearchRequest(query=queries[0].text, n=5))
        assert response.dropped == ()
        assert set(response.timings) == set(response.searched)
        assert all(seconds >= 0 for seconds in response.timings.values())

    def test_databases_per_query_override(self, service):
        response = service.search(
            SearchRequest(query="the market report", databases_per_query=1)
        )
        assert len(response.searched) == 1

    def test_positional_search_warns_but_works(self, service, parts):
        queries = topical_queries(parts, max_topics=1)
        with pytest.warns(DeprecationWarning, match="SearchRequest"):
            legacy = service.search(queries[0].text, n=5)
        modern = service.search(SearchRequest(query=queries[0].text, n=5))
        assert legacy.searched == modern.searched
        assert legacy.results == modern.results

    def test_positional_shim_warns_once_per_call_site(self, service, parts):
        query = topical_queries(parts, max_topics=1)[0].text

        def legacy_call_site():
            return service.search(query, 5)

        def other_call_site():
            return service.search(query, 5)

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("default")
            legacy_call_site()
            legacy_call_site()  # same site again: deduplicated
            other_call_site()  # a distinct site: warns on its own
        deprecations = [
            entry for entry in caught if issubclass(entry.category, DeprecationWarning)
        ]
        # stacklevel=2 attributes the warning to each *caller* line, so
        # the default filter fires exactly once per call site.
        assert len(deprecations) == 2
        assert len({entry.lineno for entry in deprecations}) == 2

    def test_routing_finds_topical_database(self, service, parts):
        queries = topical_queries(parts, max_topics=4)
        hits = 0
        for query in queries:
            counts = relevance_counts(parts, query.topic)
            best = max(counts, key=lambda name: counts[name])
            if service.select(query.text).names[0] == best:
                hits += 1
        assert hits >= len(queries) - 1

    def test_use_models_validates_coverage(self, service):
        with pytest.raises(ValueError, match="missing models"):
            service.use_models({})

    def test_use_actual_models(self, parts):
        servers = {part.name: DatabaseServer(part) for part in parts}
        service = FederatedSearchService(servers, merger=RoundRobinMerger())
        service.use_models(
            {name: server.actual_language_model() for name, server in servers.items()}
        )
        response = service.search(SearchRequest(query="the market report", n=3))
        assert response.results is not None

    def test_validation(self, parts):
        with pytest.raises(ValueError):
            FederatedSearchService({})
        servers = {part.name: DatabaseServer(part) for part in parts}
        with pytest.raises(ValueError):
            FederatedSearchService(servers, databases_per_query=0)
        service = FederatedSearchService(servers)
        service.use_models(
            {name: server.actual_language_model() for name, server in servers.items()}
        )
        with pytest.raises(ValueError):
            SearchRequest(query="x", n=0)
        with pytest.raises(ValueError):
            SearchRequest(query="x", docs_per_database=-1)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                # The deprecated positional form validates identically.
                service.search("x", n=0)


class TestBackendValidation:
    """Servers are validated against SearchableDatabase at construction."""

    def test_non_database_rejected_by_name(self, parts):
        servers = {part.name: DatabaseServer(part) for part in parts[:2]}
        servers["broken"] = object()
        with pytest.raises(TypeError) as excinfo:
            FederatedSearchService(servers)
        message = str(excinfo.value)
        assert "'broken'" in message
        assert "SearchableDatabase" in message
        assert "run_query" in message

    def test_query_only_server_accepted_for_sampling(self, parts):
        class QueryOnly:
            def __init__(self, inner):
                self._inner = inner

            def run_query(self, query, max_docs=10):
                return self._inner.run_query(query, max_docs=max_docs)

        servers = {part.name: QueryOnly(DatabaseServer(part)) for part in parts[:2]}
        service = FederatedSearchService(servers)
        assert set(service.servers) == set(servers)

    def test_retrieval_requires_engine(self, parts):
        class QueryOnly:
            def __init__(self, inner):
                self._inner = inner

            def run_query(self, query, max_docs=10):
                return self._inner.run_query(query, max_docs=max_docs)

        full = {part.name: DatabaseServer(part) for part in parts[:2]}
        servers = {name: QueryOnly(server) for name, server in full.items()}
        service = FederatedSearchService(servers, databases_per_query=1)
        service.use_models(
            {name: server.actual_language_model() for name, server in full.items()}
        )
        with pytest.raises(TypeError, match="RetrievableDatabase.*missing engine"):
            service.search(SearchRequest(query="market report", n=3))
