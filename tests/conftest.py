"""Shared fixtures: tiny, fast corpora and servers.

Everything here is deliberately small — unit tests should run in
milliseconds.  Statistical-shape tests that need more data build their
own corpora at module scope.
"""

from __future__ import annotations

import pytest

from repro.corpus import Corpus, Document
from repro.index import DatabaseServer
from repro.synth import cacm_like


@pytest.fixture
def tiny_docs() -> list[Document]:
    """Six hand-written documents with known term statistics."""
    texts = {
        "d1": "Apple pie recipes use apple and sugar.",
        "d2": "The apple orchard grows apples every autumn.",
        "d3": "Bears eat honey and sometimes apples.",
        "d4": "Honey production depends on healthy bees.",
        "d5": "Bees pollinate the apple orchard in spring.",
        "d6": "Sugar prices rose while honey prices fell.",
    }
    return [Document(doc_id=doc_id, text=text) for doc_id, text in texts.items()]


@pytest.fixture
def tiny_corpus(tiny_docs) -> Corpus:
    return Corpus(tiny_docs, name="tiny")


@pytest.fixture
def tiny_server(tiny_corpus) -> DatabaseServer:
    return DatabaseServer(tiny_corpus)


@pytest.fixture(scope="session")
def small_synthetic_server() -> DatabaseServer:
    """A ~600-document synthetic database shared across the session."""
    corpus = cacm_like().build(seed=11, scale=0.2)
    return DatabaseServer(corpus)
