"""Tests for repro.sampling.transport — the fault-tolerant client layer."""

from __future__ import annotations

import pytest

from repro.corpus import Document
from repro.sampling import (
    CircuitBreaker,
    CircuitOpenError,
    ListBootstrap,
    MaxDocuments,
    MaxQueries,
    PermanentServerError,
    QueryBasedSampler,
    RandomFromOther,
    RateLimitedError,
    ResilientDatabase,
    RetryPolicy,
    ServerError,
    ServerTimeout,
    SimulatedClock,
    TransientServerError,
    UnreliableServer,
)
from repro.utils.rand import ensure_rng


class ScriptedDatabase:
    """Raises the scripted exceptions in order, then answers honestly."""

    name = "scripted"

    def __init__(self, script: list, documents: list[Document] | None = None) -> None:
        self.script = list(script)
        self.documents = documents if documents is not None else [
            Document(doc_id="d1", text="alpha beta gamma")
        ]
        self.calls = 0

    def run_query(self, query: str, max_docs: int = 10) -> list[Document]:
        self.calls += 1
        if self.script:
            step = self.script.pop(0)
            if isinstance(step, Exception):
                raise step
        return self.documents[:max_docs]


class TestExceptionTaxonomy:
    def test_all_derive_from_server_error(self):
        for exc in (
            ServerTimeout("x"),
            TransientServerError("x"),
            RateLimitedError("x"),
            PermanentServerError("x"),
            CircuitOpenError("x"),
        ):
            assert isinstance(exc, ServerError)

    def test_rate_limited_carries_retry_after(self):
        assert RateLimitedError("slow down", retry_after=7.5).retry_after == 7.5


class TestSimulatedClock:
    def test_sleep_advances(self):
        clock = SimulatedClock()
        clock.sleep(2.5)
        clock.sleep(1.5)
        assert clock.now == 4.0

    def test_negative_sleep_ignored(self):
        clock = SimulatedClock()
        clock.sleep(-1.0)
        assert clock.now == 0.0


class TestUnreliableServer:
    def test_zero_rates_passthrough(self, tiny_server):
        wrapped = UnreliableServer(tiny_server, seed=0)
        docs = wrapped.run_query("apple", max_docs=3)
        assert docs == tiny_server.run_query("apple", max_docs=3)
        assert wrapped.stats.calls == 1
        assert wrapped.stats.transient_errors == 0

    def test_deterministic_fault_sequence(self, tiny_server):
        def fault_pattern(seed: int) -> list[bool]:
            wrapped = UnreliableServer(tiny_server, transient_rate=0.5, seed=seed)
            pattern = []
            for _ in range(30):
                try:
                    wrapped.run_query("apple", max_docs=2)
                    pattern.append(False)
                except TransientServerError:
                    pattern.append(True)
            return pattern

        assert fault_pattern(3) == fault_pattern(3)
        assert any(fault_pattern(3)) and not all(fault_pattern(3))

    def test_each_fault_mode_raises_its_class(self, tiny_server):
        cases = {
            "timeout_rate": ServerTimeout,
            "transient_rate": TransientServerError,
            "rate_limit_rate": RateLimitedError,
            "permanent_rate": PermanentServerError,
        }
        for knob, expected in cases.items():
            wrapped = UnreliableServer(tiny_server, **{knob: 1.0}, seed=1)
            with pytest.raises(expected):
                wrapped.run_query("apple", max_docs=2)

    def test_timeout_still_costs_the_server(self, tiny_corpus):
        from repro.index import DatabaseServer

        server = DatabaseServer(tiny_corpus)
        wrapped = UnreliableServer(server, timeout_rate=1.0, seed=1)
        with pytest.raises(ServerTimeout):
            wrapped.run_query("apple", max_docs=2)
        # The server processed the query; only the reply was lost.
        assert server.costs.queries_run == 1

    def test_truncation_shortens_results(self, tiny_server):
        wrapped = UnreliableServer(tiny_server, truncate_rate=1.0, seed=2)
        full = tiny_server.run_query("apple", max_docs=4)
        assert len(full) > 1
        truncated = wrapped.run_query("apple", max_docs=4)
        assert 1 <= len(truncated) < len(full)
        assert truncated == full[: len(truncated)]
        assert wrapped.stats.truncated == 1

    def test_rate_validation(self, tiny_server):
        with pytest.raises(ValueError):
            UnreliableServer(tiny_server, transient_rate=1.5)
        with pytest.raises(ValueError):
            UnreliableServer(tiny_server, transient_rate=0.6, timeout_rate=0.6)
        with pytest.raises(ValueError):
            UnreliableServer(tiny_server, retry_after=-1)

    def test_hit_count_delegates(self, tiny_server):
        wrapped = UnreliableServer(tiny_server, transient_rate=1.0, seed=0)
        assert wrapped.hit_count("apple") == tiny_server.hit_count("apple")


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=5.0, jitter=0.0)
        rng = ensure_rng(0)
        delays = [policy.delay_for(attempt, rng) for attempt in (1, 2, 3, 4, 5)]
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_stays_bounded(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.2)
        rng = ensure_rng(7)
        for _ in range(100):
            assert 0.8 <= policy.delay_for(1, rng) <= 1.2

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_for(0, ensure_rng(0))


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_after_cooldown(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.sleep(10.0)
        assert breaker.allow()  # the half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker(failure_threshold=2, cooldown=5.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.sleep(5.0)
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1)


class TestResilientDatabase:
    def test_retries_until_success(self):
        inner = ScriptedDatabase([TransientServerError("a"), ServerTimeout("b")])
        database = ResilientDatabase(inner, policy=RetryPolicy(max_attempts=4))
        docs = database.run_query("anything")
        assert len(docs) == 1
        assert inner.calls == 3
        metrics = database.metrics
        assert metrics.queries == 1
        assert metrics.attempts == 3
        assert metrics.retries == 2
        assert metrics.successes == 1
        assert metrics.total_backoff > 0
        assert database.clock.now == metrics.total_backoff

    def test_abandons_after_max_attempts(self):
        inner = ScriptedDatabase([TransientServerError(str(i)) for i in range(10)])
        database = ResilientDatabase(inner, policy=RetryPolicy(max_attempts=3))
        with pytest.raises(TransientServerError):
            database.run_query("anything")
        assert inner.calls == 3
        assert database.metrics.queries_abandoned == 1

    def test_retries_disabled_with_single_attempt(self):
        inner = ScriptedDatabase([ServerTimeout("x")])
        database = ResilientDatabase(inner, policy=RetryPolicy(max_attempts=1))
        with pytest.raises(ServerTimeout):
            database.run_query("anything")
        assert inner.calls == 1
        assert database.metrics.retries == 0

    def test_rate_limit_retry_after_honoured(self):
        inner = ScriptedDatabase([RateLimitedError("wait", retry_after=45.0)])
        database = ResilientDatabase(
            inner, policy=RetryPolicy(max_attempts=2, base_delay=0.1, jitter=0.0)
        )
        database.run_query("anything")
        assert database.clock.now >= 45.0

    def test_permanent_error_not_retried(self):
        inner = ScriptedDatabase([PermanentServerError("gone")])
        database = ResilientDatabase(inner, policy=RetryPolicy(max_attempts=5))
        with pytest.raises(PermanentServerError):
            database.run_query("anything")
        assert inner.calls == 1
        assert database.metrics.permanent_failures == 1

    def test_breaker_opens_and_fails_fast(self):
        inner = ScriptedDatabase([PermanentServerError(str(i)) for i in range(10)])
        database = ResilientDatabase(
            inner, breaker=CircuitBreaker(failure_threshold=2, cooldown=60.0)
        )
        for _ in range(2):
            with pytest.raises(PermanentServerError):
                database.run_query("anything")
        assert database.unreachable
        with pytest.raises(CircuitOpenError):
            database.run_query("anything")
        assert inner.calls == 2  # the rejected call never reached the database
        assert database.metrics.circuit_rejections == 1

    def test_half_open_probe_recovers(self):
        clock = SimulatedClock()
        inner = ScriptedDatabase([PermanentServerError("1"), PermanentServerError("2")])
        database = ResilientDatabase(
            inner,
            breaker=CircuitBreaker(failure_threshold=2, cooldown=30.0, clock=clock),
            clock=clock,
        )
        for _ in range(2):
            with pytest.raises(PermanentServerError):
                database.run_query("anything")
        assert database.unreachable
        clock.sleep(30.0)
        assert not database.unreachable
        docs = database.run_query("anything")  # half-open probe succeeds
        assert docs and database.breaker.state == CircuitBreaker.CLOSED

    def test_deterministic_for_fixed_seed(self, tiny_server):
        def one_pass(seed: int):
            wrapped = UnreliableServer(tiny_server, transient_rate=0.4, seed=seed)
            database = ResilientDatabase(wrapped, seed=seed)
            for term in ("apple", "honey", "orchard", "bees", "sugar"):
                try:
                    database.run_query(term, max_docs=3)
                except ServerError:
                    pass
            m = database.metrics
            return (m.attempts, m.retries, m.queries_abandoned, m.total_backoff)

        assert one_pass(5) == one_pass(5)


class TestSamplerUnderFaults:
    def test_abandoned_query_recorded_not_raised(self):
        inner = ScriptedDatabase(
            [TransientServerError("boom")],
            documents=[Document(doc_id="d1", text="alpha beta gamma")],
        )
        database = ResilientDatabase(inner, policy=RetryPolicy(max_attempts=1))
        sampler = QueryBasedSampler(
            database,
            bootstrap=ListBootstrap(["alpha", "beta"]),
            stopping=MaxQueries(2),
        )
        run = sampler.run()  # must not raise
        assert run.queries_run == 2
        first = run.queries[0]
        assert first.failed and first.abandoned
        assert first.error == "TransientServerError"
        assert run.abandoned_queries == 1
        assert run.failed_queries >= 1

    def test_unreachable_database_stops_run(self):
        inner = ScriptedDatabase([PermanentServerError(str(i)) for i in range(10)])
        breaker = CircuitBreaker(failure_threshold=2, cooldown=1e9)
        database = ResilientDatabase(inner, breaker=breaker)
        sampler = QueryBasedSampler(
            database,
            bootstrap=ListBootstrap(["alpha", "beta", "gamma", "delta"]),
            stopping=MaxDocuments(100),
        )
        run = sampler.run()
        assert run.stop_reason == "database_unreachable"
        # Two permanent failures opened the breaker; the run stopped
        # instead of burning its whole term budget on a dead endpoint.
        assert run.queries_run == 2
        second = sampler.run(MaxDocuments(100))
        assert second.stop_reason == "database_unreachable"

    def test_sampling_through_faults_matches_fault_free(self, small_synthetic_server):
        bootstrap = RandomFromOther(small_synthetic_server.actual_language_model())
        clean = QueryBasedSampler(
            small_synthetic_server, bootstrap=bootstrap, stopping=MaxDocuments(80), seed=4
        ).run()

        wrapped = UnreliableServer(small_synthetic_server, transient_rate=0.3, seed=9)
        database = ResilientDatabase(wrapped, policy=RetryPolicy(max_attempts=8), seed=9)
        faulty = QueryBasedSampler(
            database, bootstrap=bootstrap, stopping=MaxDocuments(80), seed=4
        ).run()

        # Retries absorb every fault, so the sampled stream — and hence
        # the learned model — is identical; only transport cost grows.
        assert faulty.documents_examined == 80
        assert faulty.model.vocabulary == clean.model.vocabulary
        assert faulty.query_terms == clean.query_terms
        assert database.metrics.retries > 0
        assert database.metrics.attempts > database.metrics.queries


class TestAcquisitionDegradation:
    def test_partial_model_with_warning(self):
        from repro.starts import SamplingSource, acquire_language_model

        docs = [Document(doc_id=f"d{i}", text=f"alpha beta unique{i}") for i in range(6)]
        inner = ScriptedDatabase(
            [None, PermanentServerError("1"), PermanentServerError("2")], documents=docs
        )
        database = ResilientDatabase(
            inner, breaker=CircuitBreaker(failure_threshold=2, cooldown=1e9)
        )
        source = SamplingSource(
            bootstrap=ListBootstrap(["alpha", "beta", "gamma", "delta", "epsilon"]),
            stopping=MaxDocuments(50),
        )
        result = acquire_language_model(database, source)
        assert result.method == "sampling_partial"
        assert result.warning and "unreachable" in result.warning
        assert result.documents_examined > 0  # the partial model survived

    def test_clean_sampling_has_no_warning(self, tiny_server):
        from repro.starts import SamplingSource, acquire_language_model

        source = SamplingSource(
            bootstrap=ListBootstrap(["apple", "honey"]), stopping=MaxDocuments(3)
        )
        result = acquire_language_model(tiny_server, source)
        assert result.method == "sampling"
        assert result.warning is None
