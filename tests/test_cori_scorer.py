"""Equivalence of the vectorized CoriScorer with the scalar CoriSelector.

Property-style sweep: random synthetic model sets of varying sizes and
sparsity, queries with known, unknown, duplicated, and no terms.  The
vectorized path must produce the *same rankings* as the scalar
reference with scores within 1e-9 — the serving layer's speedup is
never allowed to change an answer.
"""

from __future__ import annotations

import random

import pytest

from repro.dbselect import CoriParameters, CoriScorer, CoriSelector
from repro.lm import LanguageModel

VOCABULARY = [f"term{i:02d}" for i in range(60)]


def random_models(rng: random.Random, num_databases: int) -> dict[str, LanguageModel]:
    models: dict[str, LanguageModel] = {}
    for i in range(num_databases):
        model = LanguageModel()
        for term in rng.sample(VOCABULARY, k=rng.randint(1, len(VOCABULARY))):
            df = rng.randint(1, 400)
            model.add_term(term, df=df, ctf=df + rng.randint(0, 600))
        model.documents_seen = rng.randint(50, 2000)
        model.tokens_seen = rng.randint(500, 100_000)
        models[f"db{i:03d}"] = model
    return models


def probe_queries(rng: random.Random) -> list[str]:
    queries = [
        " ".join(rng.choice(VOCABULARY) for _ in range(rng.randint(1, 5)))
        for _ in range(10)
    ]
    queries.append("")  # empty query
    queries.append("zzz qqq")  # every term unseen
    queries.append("term00 term00 term01")  # duplicate terms preserved
    queries.append("term02 zzz")  # known and unknown mixed
    return queries


def assert_equivalent(selector: CoriSelector, scorer: CoriScorer, models, query):
    scalar = selector.rank(query, models)
    vector = scorer.rank(query)
    assert scalar.names == vector.names, f"ranking diverged for {query!r}"
    for left, right in zip(scalar.entries, vector.entries):
        assert left.score == pytest.approx(right.score, abs=1e-9), query


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("num_databases", [2, 7, 40])
    def test_random_model_sets(self, seed, num_databases):
        rng = random.Random(seed * 1000 + num_databases)
        models = random_models(rng, num_databases)
        selector = CoriSelector()
        scorer = CoriScorer(models)
        for query in probe_queries(rng):
            assert_equivalent(selector, scorer, models, query)

    @pytest.mark.parametrize(
        "params",
        [
            CoriParameters(default_belief=0.0),
            CoriParameters(default_belief=0.2),
            CoriParameters(df_base=10.0, df_scale=400.0),
        ],
        ids=["zero-belief", "low-belief", "shifted-df"],
    )
    def test_custom_parameters(self, params):
        rng = random.Random(99)
        models = random_models(rng, 12)
        selector = CoriSelector(params)
        scorer = CoriScorer(models, params)
        for query in probe_queries(rng):
            assert_equivalent(selector, scorer, models, query)

    def test_identical_models_tie_broken_by_name(self):
        def make() -> LanguageModel:
            model = LanguageModel()
            model.add_term("apple", df=10, ctf=25)
            model.add_term("pear", df=3, ctf=4)
            model.documents_seen = 40
            model.tokens_seen = 1000
            return model

        # Three byte-identical models: identical inputs reach identical
        # floats in both paths, so the name tie-break decides alone.
        models = {"zeta": make(), "alpha": make(), "mid": make()}
        selector = CoriSelector()
        scorer = CoriScorer(models)
        scalar = selector.rank("apple pear", models)
        vector = scorer.rank("apple pear")
        assert scalar.names == vector.names == ["alpha", "mid", "zeta"]
        assert len({entry.score for entry in vector.entries}) == 1


class TestScorerSurface:
    @pytest.fixture
    def models(self):
        return random_models(random.Random(7), 5)

    def test_empty_models_rejected(self):
        with pytest.raises(ValueError):
            CoriScorer({})

    def test_vocabulary_size_is_union(self, models):
        scorer = CoriScorer(models)
        union = set()
        for model in models.values():
            union.update(stats.term for stats in model.items())
        assert scorer.vocabulary_size == len(union)

    def test_rank_ignores_models_argument(self, models):
        # DatabaseSelector protocol compatibility: a passed model
        # mapping is ignored — the compiled models answer.
        scorer = CoriScorer(models)
        baseline = scorer.rank("term00 term01")
        other = {"only": LanguageModel()}
        assert scorer.rank("term00 term01", other) == baseline

    def test_empty_query_scores_zero(self, models):
        scorer = CoriScorer(models)
        ranking = scorer.rank("")
        assert all(entry.score == 0.0 for entry in ranking.entries)

    def test_unseen_terms_score_default_belief(self, models):
        scorer = CoriScorer(models)
        ranking = scorer.rank("zzz qqq")
        assert all(
            entry.score == pytest.approx(scorer.params.default_belief)
            for entry in ranking.entries
        )
