"""Integration tests: the paper's pipeline end to end, at small scale.

These run the whole stack — synthetic corpus → database server →
query-based sampling → projection → metrics — and assert the *shape*
results the paper reports, on corpora small enough for CI.
"""

from __future__ import annotations

import pytest

from repro.dbselect import CoriSelector, recall_at_n
from repro.corpus import partition_by_topic
from repro.expansion import QueryExpander, SampleCollection
from repro.index import DatabaseServer
from repro.lm import ctf_ratio, spearman_rank_correlation
from repro.sampling import (
    MaxDocuments,
    QueryBasedSampler,
    RandomFromLearned,
    RandomFromOther,
    RdiffConvergence,
    AnyOf,
    SamplerConfig,
)
from repro.summarize import summarize
from repro.synth import cacm_like, mssupport_like, wsj88_like


@pytest.fixture(scope="module")
def wsj_server() -> DatabaseServer:
    return DatabaseServer(wsj88_like().build(seed=4, scale=0.08))  # ~960 docs


@pytest.fixture(scope="module")
def wsj_run(wsj_server):
    sampler = QueryBasedSampler(
        wsj_server,
        bootstrap=RandomFromOther(wsj_server.actual_language_model()),
        strategy=RandomFromLearned(),
        stopping=MaxDocuments(250),
        seed=13,
    )
    return sampler.run()


class TestHeadlineClaim:
    """The paper's core result: accurate models from a few hundred docs."""

    def test_ctf_ratio_above_80_percent(self, wsj_server, wsj_run):
        actual = wsj_server.actual_language_model()
        learned = wsj_run.model.project(wsj_server.index.analyzer)
        assert ctf_ratio(learned, actual) > 0.8

    def test_spearman_positive_and_substantial(self, wsj_server, wsj_run):
        actual = wsj_server.actual_language_model()
        learned = wsj_run.model.project(wsj_server.index.analyzer)
        assert spearman_rank_correlation(learned, actual) > 0.5

    def test_about_a_hundred_queries_suffice(self, wsj_run):
        # "The documents can be acquired by running about one hundred
        # single-term queries" — allow generous slack for corpus noise.
        assert wsj_run.queries_run < 300

    def test_sample_is_small_fraction_of_database(self, wsj_server, wsj_run):
        fraction = wsj_run.documents_examined / wsj_server.num_documents
        assert fraction < 0.3


class TestConvergenceStopping:
    def test_rdiff_criterion_stops_before_budget(self, wsj_server):
        sampler = QueryBasedSampler(
            wsj_server,
            bootstrap=RandomFromOther(wsj_server.actual_language_model()),
            stopping=AnyOf([RdiffConvergence(threshold=0.02), MaxDocuments(400)]),
            seed=21,
        )
        run = sampler.run()
        assert run.documents_examined <= 400
        assert run.stop_reason != "vocabulary_exhausted"


class TestSizeDependence:
    """Figure 2's contrast: small corpora converge faster in rank terms."""

    def test_small_homogeneous_beats_large_heterogeneous(self):
        small = DatabaseServer(cacm_like().build(seed=6, scale=0.15))
        large = DatabaseServer(wsj88_like().build(seed=6, scale=0.15))
        correlations = {}
        for label, server in (("small", small), ("large", large)):
            sampler = QueryBasedSampler(
                server,
                bootstrap=RandomFromOther(server.actual_language_model()),
                stopping=MaxDocuments(150),
                seed=8,
            )
            run = sampler.run()
            learned = run.model.project(server.index.analyzer)
            correlations[label] = spearman_rank_correlation(
                learned, server.actual_language_model()
            )
        assert correlations["small"] > correlations["large"]


class TestSummarizationPipeline:
    def test_sampled_support_db_surfaces_product_terms(self):
        server = DatabaseServer(mssupport_like().build(seed=3, scale=0.2))
        sampler = QueryBasedSampler(
            server,
            bootstrap=RandomFromOther(server.actual_language_model()),
            stopping=MaxDocuments(200),
            config=SamplerConfig(docs_per_query=25),
            seed=17,
        )
        run = sampler.run()
        summary = summarize(run.model, k=50, rank_by="avg_tf")
        product_terms = {"microsoft", "excel", "foxpro", "windows", "word", "office"}
        hits = product_terms & set(summary.words)
        assert len(hits) >= 3, f"only found {hits} in {summary.words[:20]}"


class TestSelectionPipeline:
    def test_learned_models_drive_selection(self):
        # Build a 6-database testbed by topic, learn each model by
        # sampling, and check CORI routes topical queries correctly.
        corpus = wsj88_like().build(seed=9, scale=0.12)
        parts = [p for p in partition_by_topic(corpus) if len(p) >= 60][:6]
        assert len(parts) >= 3
        servers = {p.name: DatabaseServer(p) for p in parts}
        union_bootstrap_lm = None
        learned_models = {}
        for name, server in servers.items():
            bootstrap_model = server.actual_language_model()
            sampler = QueryBasedSampler(
                server,
                bootstrap=RandomFromOther(bootstrap_model),
                stopping=MaxDocuments(60),
                seed=5,
                name=name,
            )
            learned_models[name] = sampler.run().model
            union_bootstrap_lm = bootstrap_model
        assert union_bootstrap_lm is not None

        selector = CoriSelector()
        # Query built from one database's distinctive vocabulary.
        target_name = next(iter(servers))
        distinctive = [
            stats.term
            for stats in learned_models[target_name].top_terms(400, key="ctf")
            if all(
                other == target_name or stats.term not in learned_models[other]
                for other in learned_models
            )
        ][:3]
        assert distinctive, "expected some database-distinctive terms"
        ranking = selector.rank(" ".join(distinctive), learned_models)
        assert ranking.names[0] == target_name

    def test_recall_metric_with_topical_relevance(self):
        corpus = wsj88_like().build(seed=9, scale=0.12)
        parts = [p for p in partition_by_topic(corpus) if len(p) >= 60][:4]
        topic_of = {p.name: next(iter(p.topics())) for p in parts}
        relevant_counts = {
            p.name: sum(1 for d in p if d.topic == topic_of[parts[0].name])
            for p in parts
        }
        # The topic-pure partition means only parts[0] holds relevant docs.
        from repro.dbselect.base import finish_ranking

        perfect = finish_ranking("q", {p.name: float(len(p)) for p in parts})
        assert recall_at_n(perfect, relevant_counts, 1) in (0.0, 1.0)


class TestExpansionPipeline:
    def test_union_sample_supports_expansion(self, wsj_server, wsj_run):
        # The sampler keeps its documents; Sections 7-8 build on that.
        assert len(wsj_run.documents) == wsj_run.documents_examined

        corpus_b = cacm_like().build(seed=31, scale=0.2)
        server_b = DatabaseServer(corpus_b)
        run_b = QueryBasedSampler(
            server_b,
            bootstrap=RandomFromOther(server_b.actual_language_model()),
            stopping=MaxDocuments(100),
            seed=7,
        ).run()

        single = SampleCollection()
        single.add_sample(wsj_run.documents, source="wsj")
        union = SampleCollection()
        union.add_sample(wsj_run.documents, source="wsj")
        union.add_sample(run_b.documents, source="cacm")

        assert len(union) == len(single) + len(run_b.documents)
        assert union.sources == {"wsj", "cacm"}

        term = next(
            t.term
            for t in wsj_run.model.top_terms(50, key="df")
            if len(t.term) >= 4 and not t.term.isdigit()
        )
        single_expansion = QueryExpander(single, min_df=2).expand(term, k=5)
        union_expansion = QueryExpander(union, min_df=2).expand(term, k=5)
        assert single_expansion.original == term
        assert union_expansion.original == term
        # Expansion from the union reflects both sources' documents:
        # the candidate pool can only grow.
        assert union.df(term) >= single.df(term)
