"""Unit tests for repro.text.stemmer (the Porter algorithm).

Reference outputs are the classic examples from Porter's 1980 paper.
"""

from __future__ import annotations

import pytest

from repro.text.stemmer import PorterStemmer, stem


@pytest.fixture(scope="module")
def stemmer() -> PorterStemmer:
    return PorterStemmer()


class TestStep1:
    @pytest.mark.parametrize(
        ("word", "expected"),
        [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
        ],
    )
    def test_plurals_and_ed_ing(self, stemmer, word, expected):
        assert stemmer.stem(word) == expected

    @pytest.mark.parametrize(
        ("word", "expected"),
        [
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
        ],
    )
    def test_cleanup_rules(self, stemmer, word, expected):
        assert stemmer.stem(word) == expected

    @pytest.mark.parametrize(
        ("word", "expected"),
        [("happy", "happi"), ("sky", "sky")],
    )
    def test_y_to_i(self, stemmer, word, expected):
        assert stemmer.stem(word) == expected


class TestLaterSteps:
    @pytest.mark.parametrize(
        ("word", "expected"),
        [
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("adoption", "adopt"),
            ("effective", "effect"),
            ("formality", "formal"),
            ("sensitivity", "sensit"),
        ],
    )
    def test_derivational_suffixes(self, stemmer, word, expected):
        assert stemmer.stem(word) == expected

    def test_morphological_family_conflates(self, stemmer):
        family = ["report", "reports", "reported", "reporting"]
        stems = {stemmer.stem(word) for word in family}
        assert stems == {"report"}


class TestEdgeCases:
    @pytest.mark.parametrize("word", ["a", "is", "be", "i"])
    def test_short_words_unchanged(self, stemmer, word):
        assert stemmer.stem(word) == word

    def test_uppercase_folded(self, stemmer):
        assert stemmer.stem("Running") == stemmer.stem("running")

    def test_module_level_stem_matches_class(self, stemmer):
        for word in ("generalizations", "oscillators", "databases"):
            assert stem(word) == stemmer.stem(word)

    def test_never_longer_than_input(self, stemmer):
        words = ["abatements", "singing", "possibly", "relativity", "xxxx"]
        for word in words:
            assert len(stemmer.stem(word)) <= len(word)
