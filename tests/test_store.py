"""Unit tests for repro.store: atomic writes and the durable model store."""

from __future__ import annotations

import json
import os

import pytest

import repro.store.model_store as model_store_module
from repro.lm import LanguageModel, dumps_language_model
from repro.obs import TraceRecorder
from repro.store import (
    ModelStore,
    StoreIntegrityError,
    atomic_write_bytes,
    atomic_write_text,
)


def build_model(name: str, docs: list[list[str]]) -> LanguageModel:
    model = LanguageModel(name=name)
    for tokens in docs:
        model.add_document(tokens)
    return model


@pytest.fixture
def models() -> dict[str, LanguageModel]:
    return {
        "newsdb": build_model("newsdb", [["apple", "market"], ["market", "bond"]]),
        "scidb": build_model("scidb", [["algorithm", "graph", "graph"]]),
    }


def assert_same_model(left: LanguageModel, right: LanguageModel) -> None:
    assert dumps_language_model(left) == dumps_language_model(right)


class TestAtomicWrite:
    def test_creates_and_overwrites(self, tmp_path):
        target = tmp_path / "file.txt"
        atomic_write_text(target, "one")
        assert target.read_text() == "one"
        atomic_write_text(target, "two")
        assert target.read_text() == "two"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["file.txt"]

    def test_bytes_round_trip(self, tmp_path):
        target = tmp_path / "blob.bin"
        payload = bytes(range(256))
        atomic_write_bytes(target, payload)
        assert target.read_bytes() == payload

    def test_failed_write_leaves_target_intact(self, tmp_path, monkeypatch):
        target = tmp_path / "file.txt"
        atomic_write_text(target, "old content")

        def explode(src, dst):
            raise OSError("simulated crash during publish")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_text(target, "new content")
        monkeypatch.undo()
        # The target still holds the old bytes and the temp file is gone.
        assert target.read_text() == "old content"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["file.txt"]

    def test_failed_write_never_creates_target(self, tmp_path, monkeypatch):
        target = tmp_path / "never.txt"

        def explode(src, dst):
            raise OSError("simulated crash during publish")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            atomic_write_text(target, "content")
        monkeypatch.undo()
        assert list(tmp_path.iterdir()) == []


class TestModelStoreRoundTrip:
    def test_save_load_preserves_everything(self, tmp_path, models):
        store = ModelStore(tmp_path / "store")
        store.save(models, model_epoch=3)
        loaded = store.load()
        assert set(loaded) == set(models)
        for name, model in models.items():
            assert_same_model(loaded[name], model)
            assert loaded[name].documents_seen == model.documents_seen
            assert loaded[name].tokens_seen == model.tokens_seen

    def test_manifest_records_epoch_and_statistics(self, tmp_path, models):
        store = ModelStore(tmp_path / "store")
        store.save(models, model_epoch=7)
        manifest = store.read_manifest()
        assert manifest.model_epoch == 7
        assert set(manifest.models) == {"newsdb", "scidb"}
        entry = manifest.models["newsdb"]
        assert entry.terms == len(models["newsdb"])
        assert entry.documents_seen == models["newsdb"].documents_seen
        assert entry.tokens_seen == models["newsdb"].tokens_seen

    def test_awkward_install_names_become_safe_filenames(self, tmp_path):
        models = {
            "db with spaces": build_model("db with spaces", [["apple"]]),
            "slash/and=eq": build_model("slash/and=eq", [["pear"]]),
            "ünïcode": build_model("ünïcode", [["grape"]]),
        }
        store = ModelStore(tmp_path / "store")
        store.save(models)
        # Every model file is a single path component under models/.
        for entry in store.read_manifest().models.values():
            directory, filename = entry.file.split("/", 1)
            assert directory == "models"
            assert "/" not in filename
        loaded = store.load()
        assert set(loaded) == set(models)
        for name in models:
            assert_same_model(loaded[name], models[name])

    def test_exists_and_missing_manifest(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        assert not store.exists()
        with pytest.raises(FileNotFoundError):
            store.read_manifest()
        with pytest.raises(FileNotFoundError):
            store.load()

    def test_refuses_empty_model_set(self, tmp_path):
        with pytest.raises(ValueError, match="empty model set"):
            ModelStore(tmp_path / "store").save({})

    def test_save_validates_before_touching_disk(self, tmp_path, models):
        root = tmp_path / "store"
        store = ModelStore(root)
        store.save(models, model_epoch=1)
        bad = dict(models)
        bad["broken"] = build_model("broken", [["has space"]])
        with pytest.raises(ValueError, match="whitespace"):
            store.save(bad, model_epoch=2)
        # The previous store is untouched — same epoch, same models.
        assert store.read_manifest().model_epoch == 1
        assert store.verify() == []

    def test_recorder_counts_writes_and_reads(self, tmp_path, models):
        recorder = TraceRecorder()
        store = ModelStore(tmp_path / "store", recorder=recorder)
        store.save(models)
        store.load()
        metrics = recorder.metrics
        assert metrics.counter("store.models_written").value == len(models)
        assert metrics.counter("store.models_read").value == len(models)
        assert metrics.counter("store.bytes_written").value > 0
        assert {span.name for span in recorder.spans} >= {"store_save", "store_load"}


class TestModelStoreIntegrity:
    def test_tampered_model_fails_checksum(self, tmp_path, models):
        store = ModelStore(tmp_path / "store")
        store.save(models)
        entry = store.read_manifest().models["newsdb"]
        path = store.root / entry.file
        path.write_text(path.read_text() + "zzz 1 1\n")
        with pytest.raises(StoreIntegrityError, match="checksum mismatch"):
            store.load_model("newsdb")
        problems = store.verify()
        assert len(problems) == 1 and "newsdb" in problems[0]

    def test_missing_referenced_file(self, tmp_path, models):
        store = ModelStore(tmp_path / "store")
        store.save(models)
        entry = store.read_manifest().models["scidb"]
        (store.root / entry.file).unlink()
        with pytest.raises(StoreIntegrityError, match="missing"):
            store.load()
        assert store.verify() != []

    def test_unknown_model_name(self, tmp_path, models):
        store = ModelStore(tmp_path / "store")
        store.save(models)
        with pytest.raises(KeyError):
            store.load_model("nope")

    def test_corrupt_manifest_json(self, tmp_path, models):
        store = ModelStore(tmp_path / "store")
        store.save(models)
        store.manifest_path.write_text("{not json")
        with pytest.raises(StoreIntegrityError, match="not valid JSON"):
            store.read_manifest()
        assert store.verify() != []

    def test_unsupported_schema(self, tmp_path, models):
        store = ModelStore(tmp_path / "store")
        store.save(models)
        data = json.loads(store.manifest_path.read_text())
        data["schema"] = "repro-store/999"
        store.manifest_path.write_text(json.dumps(data))
        with pytest.raises(StoreIntegrityError, match="unsupported store schema"):
            store.read_manifest()


class TestCrashDuringSave:
    """Kill the writer between files; the published store must survive."""

    @pytest.mark.parametrize("crash_at_write", [1, 2, 3])
    def test_crash_leaves_previous_store_intact(
        self, tmp_path, models, monkeypatch, crash_at_write
    ):
        store = ModelStore(tmp_path / "store")
        store.save(models, model_epoch=1)
        before = {name: dumps_language_model(m) for name, m in store.load().items()}

        updated = {
            name: build_model(name, [["fresh", "tokens", name]]) for name in models
        }
        calls = {"n": 0}
        real_write = model_store_module.atomic_write_text

        def crashing_write(path, text):
            # A save writes len(models) model files then the manifest;
            # die before the crash_at_write-th write lands.
            calls["n"] += 1
            if calls["n"] == crash_at_write:
                raise OSError("simulated crash mid-save")
            real_write(path, text)

        monkeypatch.setattr(model_store_module, "atomic_write_text", crashing_write)
        with pytest.raises(OSError, match="simulated crash"):
            store.save(updated, model_epoch=2)
        monkeypatch.undo()

        # The old manifest and every model it references are intact.
        manifest = store.read_manifest()
        assert manifest.model_epoch == 1
        assert store.verify() == []
        after = {name: dumps_language_model(m) for name, m in store.load().items()}
        assert after == before

    def test_crash_before_manifest_orphans_new_files(
        self, tmp_path, models, monkeypatch
    ):
        store = ModelStore(tmp_path / "store")
        store.save({"newsdb": models["newsdb"]}, model_epoch=1)

        calls = {"n": 0}
        real_write = model_store_module.atomic_write_text

        def crash_at_manifest(path, text):
            calls["n"] += 1
            if calls["n"] > len(models):  # model files land, manifest does not
                raise OSError("simulated crash before manifest publish")
            real_write(path, text)

        monkeypatch.setattr(model_store_module, "atomic_write_text", crash_at_manifest)
        with pytest.raises(OSError, match="before manifest"):
            store.save(models, model_epoch=2)
        monkeypatch.undo()

        # The manifest never references a half-written set: it still
        # names only the old model, which still verifies; the new file
        # is an orphan, and a later successful save reclaims it.
        manifest = store.read_manifest()
        assert manifest.model_epoch == 1
        assert set(manifest.models) == {"newsdb"}
        assert store.verify() == []
        assert store.orphans() != []
        store.save(models, model_epoch=2)
        assert store.orphans() == []
        assert set(store.read_manifest().models) == set(models)


class TestOrphans:
    def test_stray_file_reported(self, tmp_path, models):
        store = ModelStore(tmp_path / "store")
        store.save(models)
        (store.root / "models" / "stray.lm").write_text("junk")
        assert store.orphans() == ["models/stray.lm"]
        assert store.verify() == []  # orphans are harmless

    def test_no_models_directory(self, tmp_path):
        assert ModelStore(tmp_path / "nowhere").orphans() == []
