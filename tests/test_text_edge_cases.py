"""Edge-case tests for the text substrate under unusual inputs."""

from __future__ import annotations

import pytest

from repro.corpus import Corpus, Document
from repro.index import DatabaseServer, InvertedIndex
from repro.lm import LanguageModel
from repro.text import Analyzer, Tokenizer
from repro.text.stemmer import PorterStemmer


class TestTokenizerEdgeCases:
    def test_very_long_token(self):
        token = "a" * 10_000
        assert Tokenizer().tokenize(token) == [token]

    def test_newlines_and_tabs_are_separators(self):
        assert Tokenizer().tokenize("one\ntwo\tthree") == ["one", "two", "three"]

    def test_leading_trailing_separators(self):
        assert Tokenizer().tokenize("...word...") == ["word"]

    def test_digits_inside_words(self):
        assert Tokenizer().tokenize("b2b model t5x") == ["b2b", "model", "t5x"]

    def test_only_unicode_punctuation(self):
        assert Tokenizer().tokenize("—…«»") == []


class TestStemmerEdgeCases:
    def test_all_vowels(self):
        assert PorterStemmer().stem("aeiou") == "aeiou"

    def test_all_consonants(self):
        stemmed = PorterStemmer().stem("bcdfg")
        assert stemmed  # no crash, non-empty

    def test_repeated_suffix_layers(self):
        # Stemming applies one pass; the output is stable and non-empty.
        stemmed = PorterStemmer().stem("rationalizations")
        assert stemmed
        assert len(stemmed) < len("rationalizations")

    def test_y_only_word(self):
        assert PorterStemmer().stem("yyy")


class TestAnalyzerEdgeCases:
    def test_document_of_only_stopwords(self):
        analyzer = Analyzer.inquery_style()
        assert analyzer.analyze("the and of a in to") == []

    def test_empty_text(self):
        assert Analyzer.inquery_style().analyze("") == []

    def test_custom_stopword_set(self):
        analyzer = Analyzer(stopwords=frozenset({"foo"}))
        assert analyzer.analyze("foo bar") == ["bar"]


class TestIndexEdgeCases:
    def test_document_that_analyzes_to_nothing(self):
        corpus = Corpus(
            [
                Document(doc_id="empty", text="the and of"),
                Document(doc_id="full", text="apple tree"),
            ]
        )
        index = InvertedIndex(corpus)
        assert index.num_documents == 2
        assert index.doc_lengths.tolist() == [0, 2]

    def test_single_document_corpus(self):
        corpus = Corpus([Document(doc_id="one", text="word word word")])
        server = DatabaseServer(corpus)
        documents = server.run_query("word", max_docs=5)
        assert [d.doc_id for d in documents] == ["one"]

    def test_identical_documents(self):
        corpus = Corpus(
            [Document(doc_id=f"d{i}", text="identical text here") for i in range(5)]
        )
        server = DatabaseServer(corpus)
        results = server.run_query("identical", max_docs=10)
        assert len(results) == 5


class TestLanguageModelEdgeCases:
    def test_add_empty_document(self):
        model = LanguageModel()
        model.add_document([])
        assert model.documents_seen == 1
        assert model.tokens_seen == 0
        assert len(model) == 0

    def test_projection_of_empty_model(self):
        projected = LanguageModel().project(Analyzer.inquery_style())
        assert len(projected) == 0

    def test_unicode_terms(self):
        model = LanguageModel()
        model.add_document(["naïve", "café"])
        assert model.df("naïve") == 1
