"""Unit tests for repro.dbselect (CORI, GlOSS, KL, evaluation)."""

from __future__ import annotations

import pytest

from repro.dbselect import (
    BGlossSelector,
    CoriParameters,
    CoriSelector,
    KlSelector,
    SelectionEvaluation,
    VGlossSelector,
    evaluate_rankings,
    recall_at_n,
)
from repro.dbselect.base import DatabaseRanking, RankedDatabase, finish_ranking
from repro.lm import LanguageModel


def make_db(term_stats: dict[str, tuple[int, int]], docs: int, tokens: int) -> LanguageModel:
    """term → (df, ctf)."""
    model = LanguageModel()
    for term, (df, ctf) in term_stats.items():
        model.add_term(term, df=df, ctf=ctf)
    model.documents_seen = docs
    model.tokens_seen = tokens
    return model


@pytest.fixture
def models() -> dict[str, LanguageModel]:
    return {
        "sports": make_db(
            {"football": (80, 200), "team": (60, 90), "market": (5, 5)},
            docs=100,
            tokens=10_000,
        ),
        "finance": make_db(
            {"market": (70, 180), "stock": (50, 120), "team": (10, 12)},
            docs=100,
            tokens=10_000,
        ),
        "mixed": make_db(
            {"football": (20, 30), "market": (20, 30), "stock": (10, 12)},
            docs=100,
            tokens=10_000,
        ),
    }


@pytest.mark.parametrize(
    "selector",
    [CoriSelector(), BGlossSelector(), VGlossSelector(), KlSelector()],
    ids=["cori", "bgloss", "vgloss", "kl"],
)
class TestAllSelectors:
    def test_topical_query_picks_topical_db(self, selector, models):
        assert selector.rank("football", models).names[0] == "sports"
        assert selector.rank("market stock", models).names[0] == "finance"

    def test_ranking_is_complete_and_deterministic(self, selector, models):
        ranking = selector.rank("football market", models)
        assert sorted(ranking.names) == sorted(models)
        again = selector.rank("football market", models)
        assert ranking.names == again.names

    def test_scores_descending(self, selector, models):
        ranking = selector.rank("football", models)
        scores = [entry.score for entry in ranking.entries]
        assert scores == sorted(scores, reverse=True)

    def test_empty_models_rejected(self, selector):
        with pytest.raises(ValueError):
            selector.rank("football", {})

    def test_unknown_term_does_not_crash(self, selector, models):
        ranking = selector.rank("xylophone", models)
        assert len(ranking.names) == 3


class TestCoriSpecifics:
    def test_belief_floor(self, models):
        selector = CoriSelector(CoriParameters(default_belief=0.4))
        ranking = selector.rank("xylophone", models)
        # No database contains the term: all scores equal the default belief.
        assert all(entry.score == pytest.approx(0.4) for entry in ranking.entries)

    def test_term_in_fewer_databases_discriminates_more(self, models):
        # "stock" (2 DBs) should separate finance from sports more than
        # "team" separates sports from finance ("team" is in 2 DBs too,
        # so compare score gaps with a 3-DB term instead).
        selector = CoriSelector()
        stock = selector.rank("stock", models)
        market = selector.rank("market", models)  # in all 3 DBs
        gap = lambda r: r.entries[0].score - r.entries[-1].score
        assert gap(stock) > 0
        assert gap(market) >= 0

    def test_invalid_default_belief(self):
        with pytest.raises(ValueError):
            CoriParameters(default_belief=1.0)

    def test_invalid_df_parameters(self):
        with pytest.raises(ValueError):
            CoriParameters(df_base=-1.0)
        with pytest.raises(ValueError):
            CoriParameters(df_scale=-0.5)

    def test_shared_parameters_dataclass(self, models):
        params = CoriParameters(default_belief=0.1)
        selector = CoriSelector(params)
        assert selector.params is params
        ranking = selector.rank("xylophone", models)
        assert all(entry.score == pytest.approx(0.1) for entry in ranking.entries)


class TestBGlossSpecifics:
    def test_conjunctive_estimate(self):
        models = {
            "a": make_db({"x": (50, 50), "y": (50, 50)}, docs=100, tokens=1000),
            "b": make_db({"x": (100, 100)}, docs=100, tokens=1000),
        }
        ranking = BGlossSelector().rank("x y", models)
        # a: 100·(0.5·0.5)=25 expected matches; b: 100·(1.0·0.0)=0.
        assert ranking.names[0] == "a"
        assert ranking.entries[0].score == pytest.approx(25.0)
        assert ranking.entries[1].score == pytest.approx(0.0)

    def test_empty_model_scores_zero(self):
        models = {"empty": LanguageModel(), "full": make_db({"x": (1, 1)}, 10, 100)}
        ranking = BGlossSelector().rank("x", models)
        assert ranking.names[0] == "full"


class TestKlSpecifics:
    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            KlSelector(smoothing=0.0)

    def test_scores_are_log_likelihoods(self, models):
        ranking = KlSelector().rank("football team", models)
        assert all(entry.score < 0 for entry in ranking.entries)


class TestRecallAtN:
    def test_perfect_ranking(self):
        ranking = finish_ranking("q", {"a": 3.0, "b": 2.0, "c": 1.0})
        relevant = {"a": 10, "b": 5, "c": 0}
        assert recall_at_n(ranking, relevant, 1) == 1.0
        assert recall_at_n(ranking, relevant, 2) == 1.0

    def test_worst_ranking(self):
        ranking = finish_ranking("q", {"a": 1.0, "b": 2.0, "c": 3.0})
        relevant = {"a": 10, "b": 0, "c": 0}
        assert recall_at_n(ranking, relevant, 1) == 0.0

    def test_partial(self):
        ranking = finish_ranking("q", {"a": 3.0, "b": 2.0, "c": 1.0})
        relevant = {"a": 5, "b": 0, "c": 5}
        assert recall_at_n(ranking, relevant, 1) == pytest.approx(1.0)
        assert recall_at_n(ranking, relevant, 2) == pytest.approx(0.5)

    def test_no_relevant_documents(self):
        ranking = finish_ranking("q", {"a": 1.0})
        assert recall_at_n(ranking, {"a": 0}, 1) == 1.0

    def test_invalid_n(self):
        ranking = finish_ranking("q", {"a": 1.0})
        with pytest.raises(ValueError):
            recall_at_n(ranking, {"a": 1}, 0)

    def test_database_missing_from_relevance(self):
        ranking = DatabaseRanking("q", (RankedDatabase("mystery", 9.0),))
        assert recall_at_n(ranking, {"other": 4}, 1) == 0.0


class TestEvaluateRankings:
    def test_means_over_queries(self):
        rankings = [
            finish_ranking("q1", {"a": 2.0, "b": 1.0}),
            finish_ranking("q2", {"a": 1.0, "b": 2.0}),
        ]
        relevance = [{"a": 10, "b": 0}, {"a": 10, "b": 0}]
        evaluation = evaluate_rankings("test", rankings, relevance, n_values=(1,))
        assert evaluation.mean_recall[1] == pytest.approx(0.5)
        assert evaluation.num_queries == 2

    def test_parallel_length_enforced(self):
        with pytest.raises(ValueError):
            evaluate_rankings("x", [finish_ranking("q", {"a": 1.0})], [])

    def test_as_row(self):
        evaluation = SelectionEvaluation("lbl", 3, {1: 0.5, 5: 0.75})
        row = evaluation.as_row()
        assert row["label"] == "lbl"
        assert row["R@1"] == 0.5
        assert row["R@5"] == 0.75
