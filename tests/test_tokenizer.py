"""Unit tests for repro.text.tokenizer."""

from __future__ import annotations

import pytest

from repro.text.tokenizer import Tokenizer, tokenize


class TestTokenize:
    def test_basic_words(self):
        assert tokenize("Hello world") == ["hello", "world"]

    def test_punctuation_is_a_separator(self):
        assert tokenize("end.of,sentence!here") == ["end", "of", "sentence", "here"]

    def test_numbers_kept_by_default(self):
        assert tokenize("in 1988 the index") == ["in", "1988", "the", "index"]

    def test_mixed_alphanumerics_stay_together(self):
        assert tokenize("win32 api") == ["win32", "api"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_only_punctuation(self):
        assert tokenize("!!! ... ---") == []

    def test_case_folding(self):
        assert tokenize("Apple APPLE aPpLe") == ["apple"] * 3

    def test_unicode_is_not_matched(self):
        # The tokenizer is ASCII-only by design; accented characters split tokens.
        assert tokenize("café") == ["caf"]


class TestTokenizerOptions:
    def test_no_lowercase(self):
        tokenizer = Tokenizer(lowercase=False)
        assert tokenizer.tokenize("Apple Pie") == ["Apple", "Pie"]

    def test_min_length_filters_short_tokens(self):
        tokenizer = Tokenizer(min_length=3)
        assert tokenizer.tokenize("a an the cat") == ["the", "cat"]

    def test_drop_numeric(self):
        tokenizer = Tokenizer(drop_numeric=True)
        assert tokenizer.tokenize("year 1988 report 2") == ["year", "report"]

    def test_drop_numeric_keeps_alphanumerics(self):
        tokenizer = Tokenizer(drop_numeric=True)
        assert tokenizer.tokenize("win32") == ["win32"]

    def test_iter_tokens_is_lazy(self):
        tokenizer = Tokenizer()
        iterator = tokenizer.iter_tokens("one two")
        assert next(iterator) == "one"
        assert next(iterator) == "two"
        with pytest.raises(StopIteration):
            next(iterator)


class TestClassifiers:
    @pytest.mark.parametrize("token", ["123", "0", "9999"])
    def test_is_numeric_true(self, token):
        assert Tokenizer.is_numeric(token)

    @pytest.mark.parametrize("token", ["a1", "apple", "1a", ""])
    def test_is_numeric_false(self, token):
        assert not Tokenizer.is_numeric(token)

    @pytest.mark.parametrize("token", ["apple", "win32", "A"])
    def test_is_word_true(self, token):
        assert Tokenizer.is_word(token)

    @pytest.mark.parametrize("token", ["two words", "", "semi-colon", "dot."])
    def test_is_word_false(self, token):
        assert not Tokenizer.is_word(token)
