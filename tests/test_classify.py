"""Probe generation and Coverage/Specificity classification.

Covers the probe rule's determinism, the classification extremes
(homogeneous vs diffuse vs empty databases), and the probe-budget
accounting — everything downstream routing relies on.
"""

from __future__ import annotations

import pytest

from repro.classify import (
    ClassifyParameters,
    QueryProbeClassifier,
    build_probe_set,
)
from repro.corpus import Corpus, Document
from repro.index import DatabaseServer
from repro.synth.profiles import PROFILES_BY_NAME


@pytest.fixture(scope="module")
def topic_space():
    return PROFILES_BY_NAME["wsj88"]().topic_space(seed=0, scale=0.02)


@pytest.fixture(scope="module")
def corpus():
    return PROFILES_BY_NAME["wsj88"]().build(seed=0, scale=0.02)


@pytest.fixture(scope="module")
def probe_set(topic_space):
    return build_probe_set(topic_space, seed=0)


class TestProbeDeterminism:
    def test_same_seed_is_byte_identical(self, topic_space):
        first = build_probe_set(topic_space, seed=3)
        second = build_probe_set(topic_space, seed=3)
        assert first.topics == second.topics
        for topic in first.topics:
            assert first.probes(topic) == second.probes(topic)
        assert first.term_weights == second.term_weights

    def test_different_seeds_draw_differently(self, topic_space):
        first = build_probe_set(topic_space, seed=0)
        second = build_probe_set(topic_space, seed=99)
        assert any(
            first.probes(topic) != second.probes(topic) for topic in first.topics
        )

    def test_term_weights_are_seed_independent(self, topic_space):
        # The candidate pool is rule-derived; only the draw is seeded.
        first = build_probe_set(topic_space, seed=0)
        second = build_probe_set(topic_space, seed=99)
        assert first.term_weights == second.term_weights

    def test_budget_takes_a_prefix(self, probe_set):
        topic = probe_set.topics[0]
        assert probe_set.probes(topic, 3) == probe_set.probes(topic)[:3]
        with pytest.raises(ValueError):
            probe_set.probes(topic, 0)

    def test_probes_look_like_user_vocabulary(self, probe_set):
        for probe in probe_set.all_probes():
            assert len(probe.text) >= 3
            assert probe.text == probe.text.lower()


class TestClassificationExtremes:
    def test_homogeneous_database_lands_in_its_topic(self, corpus, probe_set):
        topic = probe_set.topics[0]
        pure = Corpus(
            [doc for doc in corpus if doc.topic == topic], name="pure"
        )
        assert len(pure) > 0
        classifier = QueryProbeClassifier(probe_set)
        result = classifier.classify(DatabaseServer(pure))
        assert result.assigned, "a single-topic database must classify somewhere"
        assert result.assigned[0] == topic
        assert result.confidence == pytest.approx(
            result.score_for(topic).specificity
        )

    def test_diffuse_database_spreads_thin(self, corpus, probe_set):
        # The whole corpus holds every topic: no single topic should
        # dominate the way it dominates a pure partition.
        classifier = QueryProbeClassifier(probe_set)
        whole = classifier.classify(DatabaseServer(corpus), name="whole")
        uniform = 1.0 / len(probe_set.topics)
        best = max(score.specificity for score in whole.scores)
        assert best < 3 * uniform

    def test_empty_database_assigns_nothing(self, probe_set):
        empty = DatabaseServer(
            Corpus([Document(doc_id="d0", text="the of and")], name="empty-ish")
        )
        result = QueryProbeClassifier(probe_set).classify(empty)
        assert result.assigned == ()
        assert result.confidence == 0.0
        assert all(score.coverage == 0.0 for score in result.scores)

    def test_specificities_sum_to_one(self, corpus, probe_set):
        result = QueryProbeClassifier(probe_set).classify(DatabaseServer(corpus))
        assert sum(score.specificity for score in result.scores) == pytest.approx(1.0)


class TestBudgetAccounting:
    def test_probes_issued_respects_budget(self, corpus, probe_set):
        server = DatabaseServer(corpus)
        budgeted = QueryProbeClassifier(
            probe_set, ClassifyParameters(probes_per_topic=2)
        ).classify(server)
        assert budgeted.probes_issued == 2 * len(probe_set.topics)
        full = QueryProbeClassifier(probe_set).classify(server)
        assert full.probes_issued == sum(
            len(probe_set.probes(topic)) for topic in probe_set.topics
        )

    def test_classify_all_is_name_keyed(self, corpus, probe_set):
        servers = {
            "a": DatabaseServer(Corpus(list(corpus)[:40], name="a")),
            "b": DatabaseServer(Corpus(list(corpus)[40:80], name="b")),
        }
        results = QueryProbeClassifier(probe_set).classify_all(servers)
        assert set(results) == {"a", "b"}
        assert results["a"].database == "a"


class TestParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClassifyParameters(tau_coverage=-1)
        with pytest.raises(ValueError):
            ClassifyParameters(tau_specificity=1.5)
        with pytest.raises(ValueError):
            ClassifyParameters(probes_per_topic=0)
