"""Unit tests for repro.expansion (co-occurrence and query expansion)."""

from __future__ import annotations

import pytest

from repro.corpus import Document
from repro.expansion import QueryExpander, SampleCollection, expansion_bias
from repro.lm import LanguageModel


def doc(doc_id: str, text: str) -> Document:
    return Document(doc_id=doc_id, text=text)


@pytest.fixture
def collection() -> SampleCollection:
    sample = SampleCollection()
    sample.add_sample(
        [
            doc("p1", "president clinton oval office politics"),
            doc("p2", "president clinton white house politics"),
            doc("p3", "white house press briefing politics president"),
        ],
        source="politics-db",
    )
    sample.add_sample(
        [
            doc("h1", "white paint house renovation"),
            doc("h2", "garden house renovation project"),
        ],
        source="homes-db",
    )
    return sample


class TestSampleCollection:
    def test_document_count(self, collection):
        assert len(collection) == 5

    def test_df(self, collection):
        assert collection.df("president") == 3
        assert collection.df("renovation") == 2
        assert collection.df("zzz") == 0

    def test_stopwords_removed_by_default(self, collection):
        # "the" never enters the collection because the default analyzer stops it.
        sample = SampleCollection()
        sample.add_document(doc("x", "the cat"), source="db")
        assert sample.df("the") == 0
        assert sample.df("cat") == 1

    def test_sources(self, collection):
        assert collection.sources == {"politics-db", "homes-db"}

    def test_documents_containing(self, collection):
        containing = collection.documents_containing("clinton")
        assert {d.doc_id for d in containing} == {"p1", "p2"}

    def test_cooccurrence_counts(self, collection):
        counts = collection.cooccurrence_counts("clinton")
        assert counts["president"] == 2
        assert counts["oval"] == 1
        assert "clinton" not in counts  # self excluded

    def test_source_counts(self, collection):
        counts = collection.source_counts("house")
        assert counts == {"politics-db": 2, "homes-db": 2}


class TestQueryExpander:
    def test_expansion_reflects_cooccurrence(self, collection):
        expander = QueryExpander(collection, min_df=1)
        expanded = expander.expand("clinton", k=4)
        assert "president" in [e.term for e in expanded.expansions]

    def test_query_terms_not_suggested(self, collection):
        expanded = QueryExpander(collection, min_df=1).expand("president clinton", k=5)
        suggested = {e.term for e in expanded.expansions}
        assert "president" not in suggested
        assert "clinton" not in suggested

    def test_min_df_filters(self, collection):
        expanded = QueryExpander(collection, min_df=3).expand("clinton", k=10)
        for expansion in expanded.expansions:
            assert collection.df(expansion.term) >= 3

    def test_unknown_query_term(self, collection):
        expanded = QueryExpander(collection).expand("xylophone", k=5)
        assert expanded.expansions == ()

    def test_k_zero(self, collection):
        assert QueryExpander(collection).expand("clinton", k=0).expansions == ()

    def test_invalid_parameters(self, collection):
        with pytest.raises(ValueError):
            QueryExpander(collection, min_df=0)
        with pytest.raises(ValueError):
            QueryExpander(collection).expand("x", k=-1)

    def test_expanded_text(self, collection):
        expanded = QueryExpander(collection, min_df=1).expand("clinton", k=2)
        assert expanded.text.startswith("clinton ")
        assert len(expanded.text.split()) == 3

    def test_scores_descending(self, collection):
        expanded = QueryExpander(collection, min_df=1).expand("politics", k=5)
        scores = [e.score for e in expanded.expansions]
        assert scores == sorted(scores, reverse=True)


class TestExpansionBias:
    def test_single_db_expansion_biased(self, collection):
        # Expansion mined only from the politics sample favors the
        # politics database's vocabulary.
        politics_only = SampleCollection()
        politics_only.add_sample(
            [
                doc("p1", "president clinton oval office politics"),
                doc("p2", "president clinton politics speech"),
                doc("p3", "budget committee vote"),
            ],
            source="politics-db",
        )
        expanded = QueryExpander(politics_only, min_df=1).expand("president", k=3)
        assert expanded.expansions

        politics_model = LanguageModel()
        politics_model.add_document(["clinton", "oval", "office", "politics"])
        homes_model = LanguageModel()
        homes_model.add_document(["paint", "renovation", "garden"])

        bias = expansion_bias(
            expanded, {"politics": politics_model, "homes": homes_model}
        )
        assert bias["politics"] > bias["homes"]

    def test_zero_score_expansion(self):
        from repro.expansion.expand import ExpandedQuery

        bias = expansion_bias(
            ExpandedQuery("q", ()), {"a": LanguageModel(), "b": LanguageModel()}
        )
        assert bias == {"a": 0.0, "b": 0.0}
